// Unit tests for the discrete-event simulation core: fibers, virtual time,
// daemon semantics, deadlock detection, and the sync primitives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/simulation.hpp"
#include "des/sync.hpp"
#include "des/time.hpp"

namespace colza::des {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(microseconds(3), 3000u);
  EXPECT_EQ(milliseconds(2), 2000000u);
  EXPECT_EQ(seconds(1), 1000000000u);
  EXPECT_EQ(from_seconds(1.5), 1500000000u);
  EXPECT_EQ(from_micros(2.5), 2500u);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(4)), 4.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(7)), 7.0);
}

TEST(Simulation, RunsSingleFiber) {
  Simulation sim;
  bool ran = false;
  sim.spawn("f", [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(Simulation, SleepAdvancesVirtualTime) {
  Simulation sim;
  Time seen = 0;
  sim.spawn("sleeper", [&] {
    sim.sleep_for(milliseconds(5));
    seen = sim.now();
    sim.sleep_until(milliseconds(100));
    EXPECT_EQ(sim.now(), milliseconds(100));
  });
  sim.run();
  EXPECT_EQ(seen, milliseconds(5));
  EXPECT_EQ(sim.now(), milliseconds(100));
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, TieBreakBySequence) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(milliseconds(1), [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ChargeModelsComputeCost) {
  Simulation sim;
  sim.spawn("worker", [&] {
    sim.charge(microseconds(250));
    EXPECT_EQ(sim.now(), microseconds(250));
  });
  sim.run();
}

TEST(Simulation, ChargeScopedRunsWorkAndAdvancesClock) {
  Simulation sim;
  int result = 0;
  sim.spawn("worker", [&] {
    result = sim.charge_scoped([] {
      int acc = 0;
      for (int i = 0; i < 100000; ++i) acc += i % 7;
      return acc;
    });
    EXPECT_GT(sim.now(), 0u);  // real work took nonzero wall time
  });
  sim.run();
  EXPECT_GT(result, 0);
}

TEST(Simulation, YieldInterleavesFibers) {
  Simulation sim;
  std::string trace;
  sim.spawn("a", [&] {
    trace += 'a';
    sim.yield();
    trace += 'A';
  });
  sim.spawn("b", [&] {
    trace += 'b';
    sim.yield();
    trace += 'B';
  });
  sim.run();
  EXPECT_EQ(trace, "abAB");
}

TEST(Simulation, JoinWaitsForChild) {
  Simulation sim;
  bool child_done = false;
  sim.spawn("parent", [&] {
    auto h = sim.spawn("child", [&] {
      sim.sleep_for(seconds(2));
      child_done = true;
    });
    sim.join(h);
    EXPECT_TRUE(child_done);
    EXPECT_EQ(sim.now(), seconds(2));
  });
  sim.run();
  EXPECT_TRUE(child_done);
}

TEST(Simulation, JoinFinishedFiberReturnsImmediately) {
  Simulation sim;
  sim.spawn("parent", [&] {
    auto h = sim.spawn("quick", [] {});
    sim.sleep_for(seconds(1));
    EXPECT_TRUE(sim.finished(h));
    sim.join(h);  // must not block
    EXPECT_EQ(sim.now(), seconds(1));
  });
  sim.run();
}

TEST(Simulation, DaemonFiberDoesNotKeepSimAlive) {
  Simulation sim;
  int beats = 0;
  sim.spawn(
      "heartbeat",
      [&] {
        while (true) {
          sim.sleep_for(seconds(1));
          ++beats;
        }
      },
      SpawnOptions{.daemon = true});
  sim.spawn("main", [&] { sim.sleep_for(from_seconds(3.5)); });
  sim.run();
  EXPECT_EQ(beats, 3);  // daemon ran while main was alive, then sim stopped
}

TEST(Simulation, DaemonnessInheritedBySpawnedChildren) {
  Simulation sim;
  int child_iters = 0;
  sim.spawn(
      "daemon-parent",
      [&] {
        sim.spawn("child", [&] {
          while (true) {
            sim.sleep_for(seconds(1));
            ++child_iters;
          }
        });
        sim.sleep_for(seconds(100));
      },
      SpawnOptions{.daemon = true});
  sim.spawn("main", [&] { sim.sleep_for(seconds(2)); });
  sim.run();
  EXPECT_LE(child_iters, 2);
}

TEST(Simulation, DeadlockDetected) {
  Simulation sim;
  Mutex m(sim);
  sim.spawn("stuck", [&] {
    m.lock();
    m.lock();  // self-deadlock
  });
  EXPECT_THROW(sim.run(), DeadlockError);
}

TEST(Simulation, FiberExceptionPropagates) {
  Simulation sim;
  sim.spawn("thrower", [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int ticks = 0;
  sim.spawn(
      "ticker",
      [&] {
        while (true) {
          sim.sleep_for(seconds(1));
          ++ticks;
        }
      },
      SpawnOptions{.daemon = true});
  sim.run_until(from_seconds(5.5));
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), from_seconds(5.5));
  sim.run_until(from_seconds(7.5));
  EXPECT_EQ(ticks, 7);
}

TEST(Simulation, TagInheritance) {
  Simulation sim;
  std::uint64_t child_tag = 0;
  sim.spawn(
      "proc",
      [&] {
        EXPECT_EQ(sim.current_tag(), 17u);
        sim.spawn("child", [&] { child_tag = sim.current_tag(); });
        sim.sleep_for(seconds(1));
      },
      SpawnOptions{.tag = 17});
  sim.run();
  EXPECT_EQ(child_tag, 17u);
}

TEST(Simulation, CurrentPointsToRunningSim) {
  Simulation sim;
  EXPECT_EQ(Simulation::current(), nullptr);
  sim.spawn("f", [&] { EXPECT_EQ(Simulation::current(), &sim); });
  sim.run();
  EXPECT_EQ(Simulation::current(), nullptr);
}

TEST(Simulation, ManyFibersDeterministicSchedule) {
  auto run_once = [] {
    Simulation sim(SimConfig{.seed = 9});
    std::vector<int> order;
    for (int i = 0; i < 200; ++i) {
      sim.spawn("f" + std::to_string(i), [&sim, &order, i] {
        sim.sleep_for(microseconds(sim.rng().below(1000)));
        order.push_back(i);
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}


TEST(Simulation, TraceWritesChromeEvents) {
  const std::string path = "/tmp/colza_trace_test.json";
  {
    Simulation sim;
    sim.start_trace(path);
    sim.spawn("worker-a", [&] { sim.charge(milliseconds(3)); },
              SpawnOptions{.tag = 7});
    sim.spawn("worker-b", [&] {
      sim.charge(milliseconds(1));
      sim.charge(milliseconds(2));
    });
    sim.run();
    sim.stop_trace();
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string all;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) all += buf;
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(all.front(), '[');
  EXPECT_NE(all.find("worker-a [compute]"), std::string::npos);
  EXPECT_NE(all.find("worker-b [compute]"), std::string::npos);
  EXPECT_NE(all.find("\"dur\":3000.000"), std::string::npos);  // 3 ms in us
  EXPECT_NE(all.find("\"pid\":7"), std::string::npos);          // the tag
  // Three charge events in total.
  std::size_t count = 0, pos = 0;
  while ((pos = all.find("[compute]", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Simulation, TraceDisabledByDefault) {
  Simulation sim;
  EXPECT_FALSE(sim.tracing());
  sim.spawn("f", [&] { sim.charge(milliseconds(1)); });
  sim.run();  // must not crash or write anything
}

// --------------------------------------------------------------- sync

TEST(Sync, MutexMutualExclusion) {
  Simulation sim;
  Mutex m(sim);
  int inside = 0, max_inside = 0;
  for (int i = 0; i < 10; ++i) {
    sim.spawn("w", [&] {
      LockGuard g(m);
      ++inside;
      max_inside = std::max(max_inside, inside);
      sim.sleep_for(milliseconds(1));
      --inside;
    });
  }
  sim.run();
  EXPECT_EQ(max_inside, 1);
}

TEST(Sync, MutexFifoFairness) {
  Simulation sim;
  Mutex m(sim);
  std::vector<int> order;
  sim.spawn("holder", [&] {
    m.lock();
    sim.sleep_for(milliseconds(10));
    m.unlock();
  });
  for (int i = 0; i < 4; ++i) {
    sim.spawn("w" + std::to_string(i), [&, i] {
      sim.sleep_for(milliseconds(i + 1));  // arrive in order
      m.lock();
      order.push_back(i);
      m.unlock();
    });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Sync, TryLock) {
  Simulation sim;
  Mutex m(sim);
  sim.spawn("f", [&] {
    EXPECT_TRUE(m.try_lock());
    EXPECT_FALSE(m.try_lock());
    m.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
  sim.run();
}

TEST(Sync, CondVarNotifyOne) {
  Simulation sim;
  Mutex m(sim);
  CondVar cv(sim);
  bool flag = false;
  Time woke_at = 0;
  sim.spawn("waiter", [&] {
    LockGuard g(m);
    cv.wait(m, [&] { return flag; });
    woke_at = sim.now();
  });
  sim.spawn("setter", [&] {
    sim.sleep_for(seconds(3));
    LockGuard g(m);
    flag = true;
    cv.notify_one();
  });
  sim.run();
  EXPECT_EQ(woke_at, seconds(3));
}

TEST(Sync, CondVarNotifyAll) {
  Simulation sim;
  Mutex m(sim);
  CondVar cv(sim);
  bool go = false;
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn("waiter", [&] {
      LockGuard g(m);
      cv.wait(m, [&] { return go; });
      ++woken;
    });
  }
  sim.spawn("setter", [&] {
    sim.sleep_for(milliseconds(1));
    LockGuard g(m);
    go = true;
    cv.notify_all();
  });
  sim.run();
  EXPECT_EQ(woken, 5);
}

TEST(Sync, CondVarWaitForTimesOut) {
  Simulation sim;
  Mutex m(sim);
  CondVar cv(sim);
  bool timed_out = false;
  sim.spawn("waiter", [&] {
    LockGuard g(m);
    timed_out = !cv.wait_for(m, seconds(2), [] { return false; });
    EXPECT_EQ(sim.now(), seconds(2));
  });
  sim.run();
  EXPECT_TRUE(timed_out);
}

TEST(Sync, CondVarWaitForSucceedsBeforeDeadline) {
  Simulation sim;
  Mutex m(sim);
  CondVar cv(sim);
  bool flag = false;
  bool ok = false;
  sim.spawn("waiter", [&] {
    LockGuard g(m);
    ok = cv.wait_for(m, seconds(10), [&] { return flag; });
    EXPECT_EQ(sim.now(), seconds(1));
  });
  sim.spawn("setter", [&] {
    sim.sleep_for(seconds(1));
    LockGuard g(m);
    flag = true;
    cv.notify_all();
  });
  sim.run();
  EXPECT_TRUE(ok);
}

TEST(Sync, StaleTimeoutDoesNotWakeLaterBlock) {
  // A fiber that times out once and then blocks again must not be woken by
  // the first (stale) timer.
  Simulation sim;
  Mutex m(sim);
  CondVar cv(sim);
  Time second_wake = 0;
  sim.spawn("waiter", [&] {
    LockGuard g(m);
    cv.wait_for(m, milliseconds(10), [] { return false; });  // times out
    cv.wait_for(m, seconds(5), [] { return false; });        // full wait
    second_wake = sim.now();
  });
  sim.run();
  EXPECT_EQ(second_wake, milliseconds(10) + seconds(5));
}

TEST(Sync, EventualDeliversToMultipleWaiters) {
  Simulation sim;
  Eventual<int> ev(sim);
  int sum = 0;
  for (int i = 0; i < 3; ++i)
    sim.spawn("w", [&] { sum += ev.wait(); });
  sim.spawn("setter", [&] {
    sim.sleep_for(seconds(1));
    ev.set_value(7);
  });
  sim.run();
  EXPECT_EQ(sum, 21);
}

TEST(Sync, EventualWaitAfterSet) {
  Simulation sim;
  Eventual<std::string> ev(sim);
  ev.set_value("ready");
  std::string got;
  sim.spawn("w", [&] { got = ev.wait(); });
  sim.run();
  EXPECT_EQ(got, "ready");
}

TEST(Sync, EventualDoubleSetThrows) {
  Simulation sim;
  Eventual<int> ev(sim);
  ev.set_value(1);
  EXPECT_THROW(ev.set_value(2), std::logic_error);
}

TEST(Sync, EventualWaitForTimeout) {
  Simulation sim;
  Eventual<int> ev(sim);
  bool got_null = false;
  sim.spawn("w", [&] {
    got_null = (ev.wait_for(seconds(1)) == nullptr);
    EXPECT_EQ(sim.now(), seconds(1));
  });
  sim.run();
  EXPECT_TRUE(got_null);
}

TEST(Sync, BarrierReleasesAllTogether) {
  Simulation sim;
  Barrier bar(sim, 4);
  std::vector<Time> release_times;
  for (int i = 0; i < 4; ++i) {
    sim.spawn("p" + std::to_string(i), [&, i] {
      sim.sleep_for(seconds(static_cast<std::uint64_t>(i)));
      bar.arrive_and_wait();
      release_times.push_back(sim.now());
    });
  }
  sim.run();
  ASSERT_EQ(release_times.size(), 4u);
  for (Time t : release_times) EXPECT_EQ(t, seconds(3));  // last arrival
}

TEST(Sync, BarrierReusableAcrossGenerations) {
  Simulation sim;
  Barrier bar(sim, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn("p", [&] {
      for (int r = 0; r < 3; ++r) {
        sim.sleep_for(milliseconds(sim.rng().below(5) + 1));
        bar.arrive_and_wait();
      }
      ++rounds_done;
    });
  }
  sim.run();
  EXPECT_EQ(rounds_done, 2);
}

TEST(Sync, SemaphoreLimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int inside = 0, max_inside = 0;
  for (int i = 0; i < 8; ++i) {
    sim.spawn("w", [&] {
      sem.acquire();
      ++inside;
      max_inside = std::max(max_inside, inside);
      sim.sleep_for(milliseconds(1));
      --inside;
      sem.release();
    });
  }
  sim.run();
  EXPECT_EQ(max_inside, 2);
}

TEST(Sync, BarrierZeroCountThrows) {
  Simulation sim;
  EXPECT_THROW(Barrier(sim, 0), std::invalid_argument);
}

}  // namespace
}  // namespace colza::des

// End-to-end data-integrity tests: stage-time CRC32C checksums carried to
// every copy, execute-time verification, repair from buddy replicas, the
// background scrubber, targeted client re-stage when no intact copy is left,
// deferred (rot-on-write) chaos corruption, supervisor quarantine of repeat
// offenders, and the admin integrity endpoint.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "apps/mandelbulb.hpp"
#include "colza/admin.hpp"
#include "colza/catalyst_backend.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "colza/fault.hpp"
#include "colza/server.hpp"
#include "colza/supervisor.hpp"
#include "common/integrity.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "vis/data.hpp"

namespace colza {
namespace {

using common::integrity::CorruptMode;
using common::integrity::Registry;
using des::milliseconds;
using des::seconds;

// Staging area with n servers running a catalyst pipeline, one client, and
// pre-serialized mandelbulb blocks. fixed_scoped_charge pins the wall-clock
// coupled charge sites so integrity counters are exactly reproducible.
class IntegrityWorld {
 public:
  IntegrityWorld(int n, std::uint32_t nblocks, des::Duration scrub,
                 std::uint64_t seed = 21)
      : sim(des::SimConfig{.seed = seed,
                           .fixed_scoped_charge = milliseconds(2)}),
        net(sim) {
    ServerConfig cfg;
    cfg.init_cost = milliseconds(50);
    cfg.scrub_interval = scrub;
    LaunchModel instant{milliseconds(10), 0.0, milliseconds(10)};
    area = std::make_unique<StagingArea>(net, cfg, instant, seed);
    area->launch_initial(n, /*base_node=*/100);
    sim.run_until(seconds(2));  // daemons up and converged
    for (auto& s : area->servers()) {
      s->create_pipeline("render", "catalyst",
                         R"({"preset":"mandelbulb","width":32,"height":32})")
          .check();
    }
    apps::MandelbulbParams mb;
    mb.nx = mb.ny = mb.nz = 10;
    mb.total_blocks = nblocks;
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      blocks.emplace_back(b, vis::serialize_dataset(vis::DataSet{
                                 apps::mandelbulb_block(mb, b)}));
    }
    client_proc = &net.create_process(0);
    client = std::make_unique<Client>(*client_proc);
  }

  // Runs `fn` in a client fiber and drives the simulation to completion.
  template <typename Fn>
  void run(Fn fn) {
    client_proc->spawn("test-app", std::move(fn));
    sim.run();
  }

  Expected<DistributedPipelineHandle> lookup() {
    return DistributedPipelineHandle::lookup(
        *client, area->bootstrap().contacts(), "render");
  }

  Server* server(net::ProcId id) {
    for (auto& s : area->servers())
      if (s->address() == id) return s.get();
    return nullptr;
  }

  // The first alive server holding at least one backend (primary) block for
  // `iteration`; null if none.
  Server* first_primary_holder(std::uint64_t iteration) {
    for (auto& s : area->servers()) {
      if (!s->alive()) continue;
      Backend* b = s->pipeline("render");
      if (b != nullptr && !b->integrity_scan(iteration).empty()) return s.get();
    }
    return nullptr;
  }

  // The compositing root's image hash for `iteration` (0 if not rendered).
  std::uint64_t hash_of(std::uint64_t iteration) {
    for (auto& s : area->servers()) {
      auto* cat = dynamic_cast<CatalystBackend*>(s->pipeline("render"));
      if (cat == nullptr) continue;
      for (const auto& rec : cat->records()) {
        if (rec.iteration == iteration && rec.image_hash != 0)
          return rec.image_hash;
      }
    }
    return 0;
  }

  // Stages every block of `iteration` through `h` (field name default).
  void stage_all(DistributedPipelineHandle& h, std::uint64_t iteration) {
    for (const auto& [id, data] : blocks) {
      ASSERT_TRUE(h.stage(iteration, id, std::span<const std::byte>(data)).ok());
    }
  }

  des::Simulation sim;
  net::Network net;
  std::unique_ptr<StagingArea> area;
  std::vector<IterationBlock> blocks;
  net::Process* client_proc = nullptr;
  std::unique_ptr<Client> client;
};

// The stage-time checksum travels with every copy: the backend slot and the
// server-level replica store both carry the client-computed CRC32C, and the
// integrity scan reports every block as valid right after staging.
TEST(Integrity, ChecksumsTravelWithEveryCopy) {
  IntegrityWorld w(3, 4, /*scrub=*/0);
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(2);
    ASSERT_TRUE(h->activate(1).ok());
    w.stage_all(*h, 1);

    std::size_t primaries = 0;
    std::size_t replicas = 0;
    for (auto& s : w.area->servers()) {
      Backend* b = s->pipeline("render");
      ASSERT_NE(b, nullptr);
      for (const auto& info : b->integrity_scan(1)) {
        EXPECT_TRUE(info.valid) << "block " << info.block_id
                                << " invalid right after staging";
        EXPECT_NE(info.checksum, 0u);
        EXPECT_EQ(info.copyset.size(), 2u);
        ++primaries;
      }
      replicas += s->replica_count("render", 1);
    }
    EXPECT_EQ(primaries, w.blocks.size());
    EXPECT_EQ(replicas, w.blocks.size());  // R=2: one buddy copy per block

    ASSERT_TRUE(h->execute(1).ok());
    ASSERT_TRUE(h->deactivate(1).ok());
  });
  EXPECT_NE(w.hash_of(1), 0u);
}

// A bit flipped in a primary backend slot is caught by the execute-time
// verify and silently repaired from the buddy replica: the client sees a
// clean execute and the rendered image matches the corruption-free one.
TEST(Integrity, ExecuteRepairsPrimaryRotFromBuddyReplica) {
  IntegrityWorld w(3, 4, /*scrub=*/0);
  net::ProcId victim = 0;
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(2);

    // Clean reference iteration.
    ASSERT_TRUE(h->activate(1).ok());
    w.stage_all(*h, 1);
    ASSERT_TRUE(h->execute(1).ok());
    ASSERT_TRUE(h->deactivate(1).ok());

    ASSERT_TRUE(h->activate(2).ok());
    w.stage_all(*h, 2);
    Server* s = w.first_primary_holder(2);
    ASSERT_NE(s, nullptr);
    victim = s->address();
    // pick = 0 deterministically rots the first backend (primary) block.
    auto res = Registry::corrupt(&w.sim, victim, CorruptMode::bit_flip, 0);
    EXPECT_EQ(res.blocks, 1u);
    EXPECT_EQ(res.bytes, 1u);
    EXPECT_FALSE(res.deferred);

    ASSERT_TRUE(h->execute(2).ok());
    ASSERT_TRUE(h->deactivate(2).ok());
  });
  Server* s = w.server(victim);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->integrity().mismatches, 1u);
  EXPECT_EQ(s->integrity().repairs, 1u);
  EXPECT_GT(s->integrity().repair_bytes, 0u);
  EXPECT_EQ(s->integrity().restage_fallbacks, 0u);
  ASSERT_NE(w.hash_of(1), 0u);
  EXPECT_EQ(w.hash_of(2), w.hash_of(1));
}

// Truncation and zeroing (the other two corruption modes) are equally
// caught and repaired -- the checksum does not care how the bytes rotted.
TEST(Integrity, RepairsTruncatedAndZeroedPayloads) {
  IntegrityWorld w(3, 4, /*scrub=*/0);
  net::ProcId victim = 0;
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(2);
    ASSERT_TRUE(h->activate(1).ok());
    w.stage_all(*h, 1);
    Server* s = w.first_primary_holder(1);
    ASSERT_NE(s, nullptr);
    victim = s->address();

    auto res = Registry::corrupt(&w.sim, victim, CorruptMode::truncate, 0);
    EXPECT_EQ(res.blocks, 1u);
    EXPECT_GT(res.bytes, 0u);
    ASSERT_TRUE(h->execute(1).ok());

    res = Registry::corrupt(&w.sim, victim, CorruptMode::zero, 0);
    EXPECT_EQ(res.blocks, 1u);
    EXPECT_GT(res.bytes, 0u);
    ASSERT_TRUE(h->execute(1).ok());
    ASSERT_TRUE(h->deactivate(1).ok());
  });
  Server* s = w.server(victim);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->integrity().mismatches, 2u);
  EXPECT_EQ(s->integrity().repairs, 2u);
  EXPECT_NE(w.hash_of(1), 0u);
}

// The background scrubber finds rot in the replica store -- bytes nothing
// has read yet -- and repairs it in place from the primary before any
// promotion could hand the backend damaged data.
TEST(Integrity, ScrubberRepairsReplicaRotAtRest) {
  IntegrityWorld w(3, 4, /*scrub=*/milliseconds(50));
  net::ProcId victim = 0;
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(2);
    ASSERT_TRUE(h->activate(1).ok());
    w.stage_all(*h, 1);

    Server* s = nullptr;
    for (auto& cand : w.area->servers()) {
      if (cand->replica_count("render", 1) > 0) {
        s = cand.get();
        break;
      }
    }
    ASSERT_NE(s, nullptr);
    victim = s->address();
    // Candidates enumerate backend blocks first, then the replica store:
    // pick = scan size hits the first replica.
    const std::uint64_t pick =
        s->pipeline("render")->integrity_scan(1).size();
    auto res = Registry::corrupt(&w.sim, victim, CorruptMode::bit_flip, pick);
    EXPECT_EQ(res.blocks, 1u);

    w.sim.sleep_for(milliseconds(300));  // several scrub periods

    EXPECT_GE(s->integrity().scrub_passes, 2u);
    EXPECT_EQ(s->integrity().mismatches, 1u);
    EXPECT_EQ(s->integrity().repairs, 1u);

    ASSERT_TRUE(h->execute(1).ok());
    ASSERT_TRUE(h->deactivate(1).ok());
  });
  EXPECT_NE(w.hash_of(1), 0u);
}

// Unreplicated staging (R=1): a rotted block has no buddy to repair from, so
// execute reports Corrupt with the block id in the status detail and the
// client re-stages exactly that block from its pristine copy.
TEST(Integrity, NoIntactCopyReportsBlockForTargetedRestage) {
  IntegrityWorld w(3, 4, /*scrub=*/0);
  net::ProcId victim = 0;
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(1);

    ASSERT_TRUE(h->activate(1).ok());
    w.stage_all(*h, 1);
    ASSERT_TRUE(h->execute(1).ok());
    ASSERT_TRUE(h->deactivate(1).ok());

    ASSERT_TRUE(h->activate(2).ok());
    w.stage_all(*h, 2);
    Server* s = w.first_primary_holder(2);
    ASSERT_NE(s, nullptr);
    victim = s->address();
    auto res = Registry::corrupt(&w.sim, victim, CorruptMode::bit_flip, 0);
    ASSERT_EQ(res.blocks, 1u);

    Status st = h->execute(2);
    ASSERT_EQ(st.code(), StatusCode::corrupt);
    ASSERT_NE(st.detail(), 0u);
    const std::uint64_t bad = st.detail() - 1;
    ASSERT_LT(bad, w.blocks.size());
    // Mirror the resilient loop's recovery protocol: the peers that entered
    // the aborted execute are parked in the old collective tag space, so a
    // recovery commit (fresh communicator epoch, staged blocks kept) must
    // precede the targeted re-stage and the retry.
    ASSERT_TRUE(h->reactivate(2).ok());
    ASSERT_TRUE(h->stage(2, bad,
                         std::span<const std::byte>(w.blocks[bad].second))
                    .ok());
    ASSERT_TRUE(h->execute(2).ok());
    ASSERT_TRUE(h->deactivate(2).ok());
  });
  Server* s = w.server(victim);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->integrity().mismatches, 1u);
  EXPECT_EQ(s->integrity().repairs, 0u);
  EXPECT_EQ(s->integrity().restage_fallbacks, 1u);
  ASSERT_NE(w.hash_of(1), 0u);
  EXPECT_EQ(w.hash_of(2), w.hash_of(1));
}

// Double fault: every copy of every block rots (2 servers, so each copyset
// is {A, B} and both are hit). Repair has nowhere to turn; the client heals
// the iteration block by block through the Corrupt detail hints.
TEST(Integrity, ClientHealsIterationWhenAllCopiesRot) {
  IntegrityWorld w(2, 3, /*scrub=*/0);
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(2);

    ASSERT_TRUE(h->activate(1).ok());
    w.stage_all(*h, 1);
    ASSERT_TRUE(h->execute(1).ok());
    ASSERT_TRUE(h->deactivate(1).ok());

    ASSERT_TRUE(h->activate(2).ok());
    w.stage_all(*h, 2);
    for (auto& s : w.area->servers()) {
      const std::size_t total =
          s->pipeline("render")->integrity_scan(2).size() +
          s->replica_count("render", 2);
      for (std::size_t pick = 0; pick < total; ++pick) {
        auto res = Registry::corrupt(&w.sim, s->address(),
                                     CorruptMode::bit_flip, pick);
        ASSERT_EQ(res.blocks, 1u);
      }
    }

    Status st;
    int rounds = 0;
    for (; rounds < 8; ++rounds) {
      st = h->execute(2);
      if (st.ok()) break;
      ASSERT_EQ(st.code(), StatusCode::corrupt);
      ASSERT_NE(st.detail(), 0u);
      const std::uint64_t bad = st.detail() - 1;
      ASSERT_LT(bad, w.blocks.size());
      // Fresh epoch before the targeted re-stage, like the resilient loop:
      // the survivors of the aborted execute wait in the old tag space.
      ASSERT_TRUE(h->reactivate(2).ok());
      ASSERT_TRUE(h->stage(2, bad,
                           std::span<const std::byte>(w.blocks[bad].second))
                      .ok());
    }
    ASSERT_TRUE(st.ok());
    EXPECT_LE(rounds, 3);  // one restage round per block at worst
    ASSERT_TRUE(h->deactivate(2).ok());
  });
  std::uint64_t mismatches = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t repairs = 0;
  for (auto& s : w.area->servers()) {
    mismatches += s->integrity().mismatches;
    fallbacks += s->integrity().restage_fallbacks;
    repairs += s->integrity().repairs;
  }
  EXPECT_GE(mismatches, w.blocks.size());
  EXPECT_GE(fallbacks, w.blocks.size());
  EXPECT_EQ(repairs, 0u);  // no intact copy anywhere until the re-stages
  ASSERT_NE(w.hash_of(1), 0u);
  EXPECT_EQ(w.hash_of(2), w.hash_of(1));
}

// A corruption aimed at an idle server defers to its next stored payload
// (rot on write). With both copies of the single block poisoned this way,
// run_resilient_iteration recovers through a partial recovery + targeted
// re-stage -- never a full scratch re-stage -- and the image is unharmed.
TEST(Integrity, ResilientLoopAbsorbsDeferredDoubleCorruption) {
  IntegrityWorld w(2, 1, /*scrub=*/0);
  ResilientStats st;
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(2);
    ResilientOptions opts;
    opts.stats = &st;
    opts.backoff.base = milliseconds(200);
    ASSERT_TRUE(run_resilient_iteration(*h, 1, w.blocks, opts).ok());

    // Nothing staged now: both corruptions arm against the next write, so
    // iteration 2's primary AND replica rot the moment they land.
    for (auto& s : w.area->servers()) {
      auto res = Registry::corrupt(&w.sim, s->address(),
                                   CorruptMode::bit_flip, 7);
      EXPECT_EQ(res.blocks, 0u);
      EXPECT_TRUE(res.deferred);
    }
    ASSERT_TRUE(run_resilient_iteration(*h, 2, w.blocks, opts).ok());
  });
  EXPECT_GE(st.attempts, 2);
  EXPECT_GE(st.partial_recoveries, 1);
  EXPECT_GE(st.targeted_restages, 1);
  EXPECT_EQ(st.full_restages, 0);
  ASSERT_NE(w.hash_of(1), 0u);
  EXPECT_EQ(w.hash_of(2), w.hash_of(1));
}

// Same deferred double fault without replication: partial recovery is off
// the table, so the resilient loop falls back to a full scratch re-stage.
TEST(Integrity, UnreplicatedDeferredCorruptionForcesFullRestage) {
  IntegrityWorld w(2, 2, /*scrub=*/0);
  ResilientStats st;
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(1);
    ResilientOptions opts;
    opts.stats = &st;
    opts.backoff.base = milliseconds(200);
    ASSERT_TRUE(run_resilient_iteration(*h, 1, w.blocks, opts).ok());

    // Aim at block 0's primary: the same view re-stages the same placement,
    // so this server is guaranteed to store a payload next iteration.
    auto res = Registry::corrupt(&w.sim, h->copyset_for(0)[0],
                                 CorruptMode::zero, 3);
    EXPECT_TRUE(res.deferred);
    ASSERT_TRUE(run_resilient_iteration(*h, 2, w.blocks, opts).ok());
  });
  EXPECT_GE(st.full_restages, 1);
  EXPECT_EQ(st.targeted_restages, 0);
  ASSERT_NE(w.hash_of(1), 0u);
  EXPECT_EQ(w.hash_of(2), w.hash_of(1));
}

// Every detection strikes the server that held the bad bytes; three strikes
// and the supervisor quarantines its node, exactly like a flapping daemon.
// Detection and repair already contained the damage, so the server is left
// running -- quarantine only stops re-homing future daemons there.
TEST(Integrity, SupervisorQuarantinesRepeatOffender) {
  IntegrityWorld w(3, 4, /*scrub=*/0);
  Supervisor sup(w.sim, *w.area, SupervisorConfig{});
  sup.start();
  net::ProcId victim = 0;
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(2);
    ASSERT_TRUE(h->activate(1).ok());
    w.stage_all(*h, 1);
    Server* s = w.first_primary_holder(1);
    ASSERT_NE(s, nullptr);
    victim = s->address();
    for (int i = 0; i < 3; ++i) {
      auto res = Registry::corrupt(&w.sim, victim, CorruptMode::bit_flip, 0);
      ASSERT_EQ(res.blocks, 1u);
      ASSERT_TRUE(h->execute(1).ok());  // detected + repaired every time
    }
    ASSERT_TRUE(h->deactivate(1).ok());
  });
  sup.stop();
  EXPECT_EQ(sup.stats().integrity_strikes, 3);
  EXPECT_EQ(sup.stats().integrity_quarantines, 1);
  Server* s = w.server(victim);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->alive());  // quarantined, not killed
  EXPECT_EQ(s->integrity().repairs, 3u);
}

// The admin integrity endpoint mirrors the server-side counters.
TEST(Integrity, AdminEndpointReportsCounters) {
  IntegrityWorld w(3, 4, /*scrub=*/0);
  net::ProcId victim = 0;
  w.run([&] {
    auto h = w.lookup();
    ASSERT_TRUE(h.has_value());
    h->set_replication(2);
    ASSERT_TRUE(h->activate(1).ok());
    w.stage_all(*h, 1);
    Server* s = w.first_primary_holder(1);
    ASSERT_NE(s, nullptr);
    victim = s->address();
    auto res = Registry::corrupt(&w.sim, victim, CorruptMode::bit_flip, 0);
    ASSERT_EQ(res.blocks, 1u);
    ASSERT_TRUE(h->execute(1).ok());
    ASSERT_TRUE(h->deactivate(1).ok());

    Admin admin(w.client->engine());
    auto doc = admin.get_integrity(victim);
    ASSERT_TRUE(doc.has_value());
    const auto& obj = doc->as_object();
    EXPECT_EQ(static_cast<std::uint64_t>(obj.at("mismatches").as_number()),
              w.server(victim)->integrity().mismatches);
    EXPECT_EQ(static_cast<std::uint64_t>(obj.at("repairs").as_number()),
              w.server(victim)->integrity().repairs);
    EXPECT_GT(obj.at("verifies").as_number(), 0.0);
    EXPECT_EQ(obj.at("restage_fallbacks").as_number(), 0.0);
  });
}

}  // namespace
}  // namespace colza

// The chaos sweep (ctest label tier2): drives the full elastic Mandelbulb
// scenario under many seed-derived fault schedules and asserts the four
// paper-level invariants from tests/invariants.hpp against a fault-free
// reference run of the same scenario shape.
//
// Every schedule is a pure function of its seed, and the simulation runs
// with fixed scoped charges, so a failing seed replays bit-identically:
//
//   ./chaos_sweep_test --chaos-seed=17
//
// runs seed 17 alone and prints its injection log and invariant verdicts
// (see docs/testing.md for the workflow). This binary supplies its own
// main() to parse that flag before gtest sees the argv.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>

#include "invariants.hpp"

namespace colza::testing {
namespace {

constexpr std::uint64_t kSweepSeeds = 60;

// Derives one chaos schedule from a seed. The vocabulary is deliberately
// contract-preserving: jitter-shaped rules (delay / reorder / duplicate)
// only touch the "rpc" mailbox, whose protocol tolerates loss, duplication
// and reordering by design; MoNA's (source, tag) FIFO matching is perturbed
// only by slow_node, which scales every delay uniformly (a slower link, not
// a reordering one). Structural faults (crash / partition) target only the
// initial servers, never the client.
ScenarioConfig sweep_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.servers = 3 + static_cast<int>(seed % 3 == 0 ? 1 : 0);
  cfg.iterations = 4;
  cfg.blocks = 6;
  cfg.elastic_join = (seed % 2) == 0;
  cfg.use_scheduler = cfg.elastic_join && (seed % 4) == 0;
  cfg.join_at = des::seconds(12);
  // A dropped execute request costs one 600 s (virtual) RPC timeout per
  // retry; virtual time is cheap, so give the worst case plenty of room.
  cfg.deadline = des::seconds(20000);

  Rng r(seed * 0x9e3779b97f4a7c15ULL + 1);
  chaos::ChaosPlan plan;
  plan.seed = seed;

  {  // Always: low-rate RPC drops in a bounded early window.
    chaos::Rule d;
    d.kind = chaos::RuleKind::drop;
    d.probability = 0.01 + 0.04 * r.uniform();
    d.box = "rpc";
    d.after = des::seconds(3);
    d.before = des::seconds(25);
    plan.rules.push_back(d);
  }
  if (r.uniform() < 0.6) {
    chaos::Rule d;
    d.kind = chaos::RuleKind::delay;
    d.probability = 0.2;
    d.box = "rpc";
    d.delay = des::milliseconds(1);
    d.jitter = des::milliseconds(20);
    d.after = des::seconds(3);
    d.before = des::seconds(30);
    plan.rules.push_back(d);
  }
  if (r.uniform() < 0.5) {
    chaos::Rule d;
    d.kind = chaos::RuleKind::duplicate;
    d.probability = 0.03;
    d.box = "rpc";
    d.copies = 1;
    d.spacing = des::microseconds(100);
    plan.rules.push_back(d);
  }
  if (r.uniform() < 0.4) {
    chaos::Rule d;
    d.kind = chaos::RuleKind::reorder;
    d.probability = 0.1;
    d.box = "rpc";
    d.jitter = des::milliseconds(5);
    d.after = des::seconds(3);
    d.before = des::seconds(30);
    plan.rules.push_back(d);
  }
  if (r.uniform() < 0.5) {
    chaos::Rule d;
    d.kind = chaos::RuleKind::slow_node;
    d.node = 100 + static_cast<net::NodeId>(r.below(
                       static_cast<std::uint64_t>(cfg.servers)));
    d.factor = 2.0 + 2.0 * r.uniform();
    d.after = des::seconds(5);
    d.before = des::seconds(20);
    plan.rules.push_back(d);
  }
  const std::uint64_t structural = r.below(3);
  if (structural == 1) {
    chaos::Rule d;
    d.kind = chaos::RuleKind::crash;
    d.target = 1 + static_cast<net::ProcId>(r.below(
                       static_cast<std::uint64_t>(cfg.servers)));
    d.at = des::seconds(8 + r.below(18));
    plan.rules.push_back(d);
  } else if (structural == 2) {
    chaos::Rule d;
    d.kind = chaos::RuleKind::partition;
    const auto victim = 1 + static_cast<net::ProcId>(r.below(
                                static_cast<std::uint64_t>(cfg.servers)));
    d.group_a = {victim};
    for (int s = 1; s <= cfg.servers; ++s) {
      if (static_cast<net::ProcId>(s) != victim) {
        d.group_b.push_back(static_cast<net::ProcId>(s));
      }
    }
    d.at = des::seconds(6 + r.below(15));
    d.heal_at = d.at + des::seconds(2 + r.below(10));
    plan.rules.push_back(d);
  }
  cfg.plan = std::move(plan);
  return cfg;
}

// Fault-free reference results, cached per scenario shape. The reference
// hash of an iteration depends only on the staged data and the render
// preset (verified by chaos_test's RenderHashIndependentOfServerCount), so
// one run per shape with a fixed seed serves every sweep seed of that shape.
using ShapeKey = std::tuple<int, bool, bool>;

const ScenarioResult& reference_for(const ScenarioConfig& cfg) {
  static std::map<ShapeKey, ScenarioResult> cache;
  const ShapeKey key{cfg.servers, cfg.elastic_join, cfg.use_scheduler};
  auto it = cache.find(key);
  if (it == cache.end()) {
    ScenarioConfig ref = cfg;
    ref.plan = chaos::ChaosPlan{};  // no rules
    ref.seed = 1;
    it = cache.emplace(key, run_elastic_mandelbulb(ref)).first;
  }
  return it->second;
}

std::string diagnose(std::uint64_t seed, const ScenarioResult& res) {
  std::string out = "\n--- seed " + std::to_string(seed) + " (replay: " +
                    "./chaos_sweep_test --chaos-seed=" + std::to_string(seed) +
                    ") ---\n";
  out += "end_time=" + std::to_string(res.end_time) + " iterations:";
  for (const auto& it : res.iterations) {
    out += " " + std::to_string(it.iteration) + ":" +
           std::string(colza::to_string(it.code));
  }
  out += "\nservers:";
  for (const auto& s : res.servers) {
    out += "\n  id=" + std::to_string(s.id) +
           (s.alive ? " alive" : " dead") +
           " active=" + std::to_string(s.active_iterations) + " view=[";
    for (net::ProcId m : s.view) out += std::to_string(m) + " ";
    out += "] records=";
    for (const auto& rec : s.records) {
      out += std::to_string(rec.iteration) + "(n=" +
             std::to_string(rec.comm_size) + ",h=" +
             std::to_string(rec.image_hash % 97) + ") ";
    }
  }
  out += "\ninjection log (" + std::to_string(res.injections.size()) +
         " records):\n" + res.chaos_log;
  return out;
}

// Runs one seed and returns the four invariant verdicts ("" = pass).
struct SeedVerdict {
  ScenarioResult result;
  std::string inv1, inv2, inv3, inv4;
};

SeedVerdict run_seed(std::uint64_t seed) {
  const ScenarioConfig cfg = sweep_scenario(seed);
  SeedVerdict v;
  v.result = run_elastic_mandelbulb(cfg);
  const ScenarioResult& ref = reference_for(cfg);
  v.inv1 = check_bounded_progress(v.result, cfg);
  v.inv2 = check_two_phase_atomicity(v.result);
  v.inv3 = check_swim_convergence(v.result);
  v.inv4 = check_render_hashes(v.result, reference_hashes(ref));
  return v;
}

TEST(ChaosSweep, FaultFreeReferencesSatisfyInvariants) {
  for (const std::uint64_t seed : {2ULL, 3ULL, 4ULL, 5ULL}) {
    ScenarioConfig cfg = sweep_scenario(seed);
    const ScenarioResult& ref = reference_for(cfg);
    ASSERT_TRUE(ref.client_done);
    EXPECT_TRUE(ref.injections.empty());
    EXPECT_EQ(check_two_phase_atomicity(ref), "");
    EXPECT_EQ(check_swim_convergence(ref), "");
    for (const auto& it : ref.iterations) {
      EXPECT_EQ(it.code, StatusCode::ok) << "fault-free iteration failed";
    }
    // Every iteration of the fault-free run produced a root hash.
    EXPECT_EQ(reference_hashes(ref).size(), cfg.iterations);
  }
}

TEST(ChaosSweep, AllSeedsSatisfyAllInvariants) {
  std::size_t total_iterations = 0;
  std::size_t ok_iterations = 0;
  for (std::uint64_t seed = 1; seed <= kSweepSeeds; ++seed) {
    SCOPED_TRACE("sweep seed " + std::to_string(seed));
    const SeedVerdict v = run_seed(seed);
    EXPECT_EQ(v.inv1, "") << diagnose(seed, v.result);
    EXPECT_EQ(v.inv2, "") << diagnose(seed, v.result);
    EXPECT_EQ(v.inv3, "") << diagnose(seed, v.result);
    EXPECT_EQ(v.inv4, "") << diagnose(seed, v.result);
    for (const auto& it : v.result.iterations) {
      ++total_iterations;
      ok_iterations += it.code == StatusCode::ok ? 1 : 0;
    }
    if (seed % 10 == 0) {
      std::printf("[sweep] %llu/%llu seeds done, %zu/%zu iterations ok\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(kSweepSeeds), ok_iterations,
                  total_iterations);
      std::fflush(stdout);
    }
  }
  // Aggregate sanity: the fault vocabulary perturbs runs without destroying
  // them -- most iterations must still commit.
  ASSERT_GT(total_iterations, 0u);
  EXPECT_GE(static_cast<double>(ok_iterations),
            0.5 * static_cast<double>(total_iterations))
      << ok_iterations << "/" << total_iterations << " iterations ok";
}

// The replay guarantee the --chaos-seed workflow rests on: the same seed
// produces the same injection log, the same timeline end, and the same
// per-iteration outcomes, bit for bit.
TEST(ChaosSweep, ReplayIsBitIdentical) {
  const std::uint64_t seed = 13;  // has delay + slow_node + structural fault
  const SeedVerdict a = run_seed(seed);
  const SeedVerdict b = run_seed(seed);
  EXPECT_EQ(a.result.chaos_log, b.result.chaos_log);
  EXPECT_TRUE(a.result.injections == b.result.injections);
  EXPECT_EQ(a.result.end_time, b.result.end_time);
  ASSERT_EQ(a.result.iterations.size(), b.result.iterations.size());
  for (std::size_t i = 0; i < a.result.iterations.size(); ++i) {
    EXPECT_EQ(a.result.iterations[i].code, b.result.iterations[i].code);
    EXPECT_EQ(a.result.iterations[i].view, b.result.iterations[i].view);
  }
}

int replay_one(std::uint64_t seed) {
  std::printf("replaying sweep seed %llu\n",
              static_cast<unsigned long long>(seed));
  const SeedVerdict v = run_seed(seed);
  std::printf("%s", diagnose(seed, v.result).c_str());
  int failures = 0;
  for (const std::string* inv : {&v.inv1, &v.inv2, &v.inv3, &v.inv4}) {
    if (!inv->empty()) {
      std::printf("VIOLATED %s\n", inv->c_str());
      ++failures;
    }
  }
  if (failures == 0) std::printf("all four invariants hold\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace colza::testing

// Custom main: --chaos-seed=N replays one schedule and prints its log
// instead of running the gtest suite.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--chaos-seed=";
    if (arg.rfind(prefix, 0) == 0) {
      return colza::testing::replay_one(
          std::strtoull(arg.c_str() + prefix.size(), nullptr, 10));
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

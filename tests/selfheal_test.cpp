// Self-healing staging (tier 1): the Supervisor actor (respawn, budget,
// flap quarantine, catch-up sweep), the seeded jittered Backoff schedule,
// the AutoScaler membership-change cooldown, and a 3-iteration crash-storm
// smoke -- replication 2 plus a live supervisor ride through one crash per
// iteration with zero client-visible failures and zero full re-stages,
// while the unsupervised unreplicated run degrades to the old full
// re-stage path. The 30-iteration storm lives in crash_storm_test.cpp
// (ctest -L tier2).
#include <gtest/gtest.h>

#include <vector>

#include "chaos/chaos.hpp"
#include "colza/autoscale.hpp"
#include "colza/deploy.hpp"
#include "colza/supervisor.hpp"
#include "common/backoff.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "invariants.hpp"

namespace colza {
namespace {

using des::milliseconds;
using des::seconds;

// ----------------------------------------------------------------- Backoff

TEST(Backoff, JitterFreeScheduleDoublesUpToTheCap) {
  Backoff b(BackoffPolicy{.base = seconds(1),
                          .multiplier = 2.0,
                          .cap = seconds(30),
                          .jitter = 0.0,
                          .seed = 0});
  EXPECT_EQ(b.next(), seconds(1));
  EXPECT_EQ(b.next(), seconds(2));
  EXPECT_EQ(b.next(), seconds(4));
  EXPECT_EQ(b.next(), seconds(8));
  EXPECT_EQ(b.next(), seconds(16));
  EXPECT_EQ(b.next(), seconds(30));  // clamped
  EXPECT_EQ(b.next(), seconds(30));  // stays clamped
  b.reset();
  EXPECT_EQ(b.next(), seconds(1));   // reset restarts from base
}

// The regression pin for the jittered schedule: the delays are a pure
// function of (policy, seed) -- two instances agree step by step, every
// step stays inside the jitter envelope of the nominal doubling schedule,
// and a different seed produces a different schedule.
TEST(Backoff, JitteredScheduleIsAPureFunctionOfTheSeed) {
  const BackoffPolicy policy{.base = seconds(1),
                             .multiplier = 2.0,
                             .cap = seconds(30),
                             .jitter = 0.25,
                             .seed = 42};
  Backoff a(policy);
  Backoff b(policy);
  std::vector<des::Duration> sa;
  std::vector<des::Duration> sb;
  double nominal = static_cast<double>(seconds(1));
  const double cap = static_cast<double>(seconds(30));
  for (int i = 0; i < 8; ++i) {
    sa.push_back(a.next());
    sb.push_back(b.next());
    const double d = static_cast<double>(sa.back());
    EXPECT_GE(d, nominal * 0.75) << "step " << i;
    EXPECT_LE(d, nominal * 1.25) << "step " << i;
    nominal = std::min(nominal * 2.0, cap);
  }
  EXPECT_EQ(sa, sb);

  BackoffPolicy other = policy;
  other.seed = 43;
  Backoff c(other);
  std::vector<des::Duration> sc;
  for (int i = 0; i < 8; ++i) sc.push_back(c.next());
  EXPECT_NE(sa, sc);
}

// --------------------------------------------------- AutoScaler cooldown

TEST(AutoScalerMembership, MembershipChangeStartsTheResizeCooldown) {
  AutoScalePolicy policy;
  policy.window = 1;
  policy.cooldown_iterations = 2;
  policy.target_execute = seconds(10);

  // Without a membership change, one over-target observation scales up.
  AutoScaler eager(policy);
  EXPECT_EQ(eager.observe(seconds(60), 2), ScaleDecision::up);

  // After a crash death / respawn join, the same observations are held for
  // cooldown_iterations before the scaler decides again.
  AutoScaler notified(policy);
  notified.notify_membership_change();
  EXPECT_EQ(notified.observe(seconds(60), 2), ScaleDecision::hold);
  EXPECT_EQ(notified.observe(seconds(60), 2), ScaleDecision::hold);
  EXPECT_EQ(notified.observe(seconds(60), 2), ScaleDecision::up);
}

TEST(AutoScalerMembership, MembershipChangeClearsTheMedianWindow) {
  AutoScalePolicy policy;
  policy.window = 2;
  policy.cooldown_iterations = 0;
  policy.target_execute = seconds(10);

  AutoScaler scaler(policy);
  EXPECT_EQ(scaler.observe(seconds(60), 2), ScaleDecision::hold);  // filling
  scaler.notify_membership_change();
  // The pre-change observation was discarded: the window refills from
  // scratch instead of mixing recovery spikes with steady-state samples.
  EXPECT_EQ(scaler.observe(seconds(60), 2), ScaleDecision::hold);
  EXPECT_EQ(scaler.observe(seconds(60), 2), ScaleDecision::up);
}

// -------------------------------------------------------------- Supervisor

struct SupervisorTest : ::testing::Test {
  des::Simulation sim;
  net::Network net{sim};
  ServerConfig scfg;
  LaunchModel instant{milliseconds(10), 0.0, milliseconds(10)};

  std::unique_ptr<StagingArea> area;

  void boot(int servers, std::uint64_t seed = 1) {
    scfg.init_cost = milliseconds(10);
    area = std::make_unique<StagingArea>(net, scfg, instant, seed);
    area->launch_initial(servers, /*base_node=*/100);
    sim.run_until(seconds(2));
  }

  void kill_at(des::Time t, std::size_t index) {
    sim.schedule_at(t, [this, index] {
      area->servers()[index]->process().kill();
    });
  }
};

TEST_F(SupervisorTest, RespawnsACrashedDaemonOnItsNode) {
  boot(3);
  Supervisor sup(sim, *area, {});
  sup.start();
  const net::NodeId dead_node = area->servers()[1]->process().node();
  kill_at(seconds(5), 1);
  sim.run_until(seconds(60));

  EXPECT_EQ(area->alive_count(), 3u);
  EXPECT_EQ(sup.stats().deaths_seen, 1);
  EXPECT_EQ(sup.stats().respawns_started, 1);
  EXPECT_EQ(sup.stats().respawns_joined, 1);
  EXPECT_FALSE(sup.quarantined(dead_node));
  ASSERT_EQ(area->servers().size(), 4u);  // 3 founders + the replacement
  Server& replacement = *area->servers().back();
  EXPECT_TRUE(replacement.alive());
  EXPECT_EQ(replacement.process().node(), dead_node);
  EXPECT_EQ(replacement.group().view().size(), 3u);  // rejoined the group
}

TEST_F(SupervisorTest, OnRespawnCallbackSeesTheReplacement) {
  boot(3);
  Supervisor sup(sim, *area, {});
  int respawns = 0;
  Server* seen = nullptr;
  sup.on_respawn([&](Server& s) {
    ++respawns;
    seen = &s;
  });
  sup.start();
  kill_at(seconds(5), 0);
  sim.run_until(seconds(60));

  EXPECT_EQ(respawns, 1);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen, area->servers().back().get());
}

TEST_F(SupervisorTest, RestartBudgetCapsRespawns) {
  boot(3);
  SupervisorConfig cfg;
  cfg.restart_budget = 0;
  Supervisor sup(sim, *area, cfg);
  sup.start();
  kill_at(seconds(5), 1);
  sim.run_until(seconds(60));

  EXPECT_EQ(area->alive_count(), 2u);  // nothing respawned
  EXPECT_EQ(sup.stats().deaths_seen, 1);
  EXPECT_EQ(sup.stats().respawns_started, 0);
  EXPECT_EQ(sup.stats().budget_exhausted, 1);
}

TEST_F(SupervisorTest, FlappingNodeIsQuarantined) {
  boot(3);
  SupervisorConfig cfg;
  cfg.flap_threshold = 1;  // first flap quarantines
  Supervisor sup(sim, *area, cfg);
  // Model a poisoned node: every replacement dies shortly after joining.
  sup.on_respawn([&](Server& s) {
    Server* doomed = &s;
    sim.schedule_after(seconds(2), [doomed] { doomed->process().kill(); });
  });
  sup.start();
  const net::NodeId node = area->servers()[0]->process().node();
  kill_at(seconds(5), 0);
  sim.run_until(seconds(120));

  EXPECT_TRUE(sup.quarantined(node));
  EXPECT_EQ(sup.stats().deaths_seen, 2);  // founder + the doomed replacement
  EXPECT_EQ(sup.stats().respawns_started, 1);
  EXPECT_EQ(sup.stats().flaps, 1);
  EXPECT_EQ(sup.stats().nodes_quarantined, 1);
  EXPECT_EQ(area->alive_count(), 2u);  // the node stays down
}

TEST_F(SupervisorTest, StartSweepsDeathsDeclaredBeforeAttach) {
  boot(3);
  kill_at(seconds(5), 2);
  sim.run_until(seconds(25));  // SWIM has long since declared the death

  Supervisor sup(sim, *area, {});
  sup.start();
  sim.run_until(seconds(60));

  EXPECT_EQ(sup.stats().deaths_seen, 1);
  EXPECT_EQ(sup.stats().respawns_joined, 1);
  EXPECT_EQ(area->alive_count(), 3u);
}

TEST_F(SupervisorTest, StopCancelsInFlightRespawns) {
  boot(3);
  SupervisorConfig cfg;
  cfg.backoff.base = seconds(60);  // death is seen long before the launch
  cfg.backoff.cap = seconds(600);
  cfg.backoff.jitter = 0.0;
  Supervisor sup(sim, *area, cfg);
  sup.start();
  kill_at(seconds(5), 1);
  sim.run_until(seconds(30));
  ASSERT_EQ(sup.stats().deaths_seen, 1);
  ASSERT_EQ(sup.stats().respawns_started, 1);
  sup.stop();
  sim.run_until(seconds(300));

  EXPECT_EQ(sup.stats().respawns_joined, 0);  // the armed timer was a no-op
  EXPECT_EQ(area->alive_count(), 2u);
}

TEST_F(SupervisorTest, FeedsMembershipChangesIntoTheAutoScaler) {
  boot(3);
  AutoScalePolicy policy;
  policy.window = 1;
  policy.cooldown_iterations = 1;
  policy.target_execute = seconds(10);
  AutoScaler scaler(policy);
  // In-band observation (between down_factor and up_factor of the target).
  ASSERT_EQ(scaler.observe(seconds(5), 3), ScaleDecision::hold);

  Supervisor sup(sim, *area, {});
  sup.set_autoscaler(&scaler);
  sup.start();
  kill_at(seconds(5), 0);
  sim.run_until(seconds(60));
  ASSERT_EQ(sup.stats().respawns_joined, 1);

  // Both the death and the respawn join re-armed the cooldown, so the
  // post-recovery spike is absorbed instead of triggering a scale-up.
  EXPECT_EQ(scaler.observe(seconds(60), 3), ScaleDecision::hold);
  EXPECT_EQ(scaler.observe(seconds(60), 3), ScaleDecision::up);
}

// ------------------------------------------------------ crash-storm smoke

// Tier-1 smoke of the tier-2 storm: one server killed per iteration for 3
// Mandelbulb iterations. With replication 2 and a live supervisor every
// iteration commits on the first client-visible attempt chain (no failed
// iterations) and no attempt ever re-stages the full iteration -- recovery
// is buddy promotion plus at most targeted re-stages.
TEST(SelfHealStorm, ThreeIterationSmokeZeroFailuresZeroFullRestages) {
  testing::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.servers = 4;
  cfg.iterations = 3;
  cfg.replication = 2;
  cfg.supervisor = true;
  cfg.compute_between = seconds(40);
  cfg.resilient.attempt_timeout = seconds(20);
  cfg.plan = chaos::crash_storm_plan(/*base_node=*/100, /*nodes=*/4,
                                     /*start=*/seconds(10),
                                     /*period=*/seconds(45),
                                     /*crashes=*/3, /*seed=*/11);
  cfg.trace = true;  // also resets the metrics registry for this scenario

  const auto r = testing::run_elastic_mandelbulb(cfg);
  ASSERT_TRUE(r.client_done);
  for (const auto& it : r.iterations) {
    EXPECT_EQ(it.code, StatusCode::ok) << "iteration " << it.iteration;
  }
  EXPECT_EQ(r.resilient.full_restages, 0);
  EXPECT_EQ(r.supervisor.deaths_seen, 3);
  EXPECT_EQ(r.supervisor.respawns_joined, 3);
  // All three crashes actually fired (each found a live victim).
  int crashes = 0;
  for (const auto& rec : r.injections) {
    crashes += rec.kind == chaos::RuleKind::crash ? 1 : 0;
  }
  EXPECT_EQ(crashes, 3);

  // The metrics registry saw the same story the stats structs tell: the
  // supervisor decision counters mirror SupervisorStats, the recovery
  // counters mirror ResilientStats, and staging moved real bytes (with
  // replication 2, at least as many replicated as primary-staged).
  const auto& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.counter_value("supervisor.deaths_seen"),
            static_cast<std::uint64_t>(r.supervisor.deaths_seen));
  EXPECT_EQ(reg.counter_value("supervisor.respawns_started"),
            static_cast<std::uint64_t>(r.supervisor.respawns_started));
  EXPECT_EQ(reg.counter_value("supervisor.respawns_joined"),
            static_cast<std::uint64_t>(r.supervisor.respawns_joined));
  EXPECT_EQ(reg.counter_value("colza.restage.full"),
            static_cast<std::uint64_t>(r.resilient.full_restages));
  EXPECT_EQ(reg.counter_value("colza.recovery.partial"),
            static_cast<std::uint64_t>(r.resilient.partial_recoveries));
  EXPECT_EQ(reg.counter_value("colza.restage.targeted"),
            static_cast<std::uint64_t>(r.resilient.targeted_restages));
  EXPECT_GT(reg.counter_value("colza.bytes_staged"), 0u);
  EXPECT_GT(reg.counter_value("colza.bytes_replicated"), 0u);
}

// The degraded baseline the storm is measured against: no supervisor, no
// replication. A crash mid-iteration forces the old full re-stage path --
// the run still completes (the resilient loop was always crash-safe), but
// it pays a scratch re-stage the replicated run never does.
TEST(SelfHealStorm, WithoutSupervisorDegradesToFullRestage) {
  testing::ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.servers = 4;
  cfg.iterations = 3;
  cfg.replication = 1;
  cfg.supervisor = false;
  cfg.compute_between = seconds(40);
  cfg.resilient.attempt_timeout = seconds(20);
  chaos::Rule crash;
  crash.kind = chaos::RuleKind::crash;
  crash.node = 101;
  crash.at = seconds(3);  // lands inside iteration 1's stage/execute window
  cfg.plan.seed = 11;
  cfg.plan.rules = {crash};

  const auto r = testing::run_elastic_mandelbulb(cfg);
  ASSERT_TRUE(r.client_done);
  for (const auto& it : r.iterations) {
    EXPECT_EQ(it.code, StatusCode::ok) << "iteration " << it.iteration;
  }
  EXPECT_GT(r.resilient.full_restages, 0);
  EXPECT_EQ(r.resilient.partial_recoveries, 0);  // R=1: no replica path
}

}  // namespace
}  // namespace colza

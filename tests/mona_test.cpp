// Unit and property tests for MoNA: matched p2p, communicators, and every
// collective across a sweep of communicator sizes (including non powers of
// two), plus non-blocking requests and elastic communicator re-creation.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "des/simulation.hpp"
#include "mona/mona.hpp"
#include "net/network.hpp"

namespace colza::mona {
namespace {

using des::seconds;

std::span<const std::byte> as_bytes_of(const std::vector<std::int64_t>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()),
          v.size() * sizeof(std::int64_t)};
}
std::span<std::byte> as_writable(std::vector<std::int64_t>& v) {
  return {reinterpret_cast<std::byte*>(v.data()),
          v.size() * sizeof(std::int64_t)};
}

// Test harness: N processes (4 per node), each with a MoNA instance; `body`
// runs as the "main" fiber of each rank with a ready communicator.
class MonaWorld {
 public:
  explicit MonaWorld(int n, std::uint64_t seed = 1)
      : sim(des::SimConfig{.seed = seed}), net(sim) {
    std::vector<net::ProcId> addrs;
    for (int i = 0; i < n; ++i) {
      auto& p = net.create_process(static_cast<net::NodeId>(i / 4));
      procs.push_back(&p);
      insts.push_back(std::make_unique<Instance>(p));
      addrs.push_back(p.id());
    }
    for (int i = 0; i < n; ++i) comms.push_back(insts[i]->comm_create(addrs));
  }

  void run(std::function<void(int, Communicator&)> body) {
    for (std::size_t i = 0; i < comms.size(); ++i) {
      procs[i]->spawn("rank" + std::to_string(i), [this, i, body] {
        body(static_cast<int>(i), *comms[i]);
      });
    }
    sim.run();
  }

  des::Simulation sim;
  net::Network net;
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<Instance>> insts;
  std::vector<std::shared_ptr<Communicator>> comms;
};

// --------------------------------------------------------------- p2p

TEST(MonaP2p, SendRecvByAddress) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pa = net.create_process(0);
  auto& pb = net.create_process(1);
  Instance ia(pa), ib(pb);
  std::string got;
  pb.spawn("recv", [&] {
    std::vector<std::byte> buf(64);
    std::size_t n = 0;
    ASSERT_TRUE(ib.recv(buf, pa.id(), 42, &n).ok());
    got.assign(reinterpret_cast<char*>(buf.data()), n);
  });
  pa.spawn("send", [&] {
    const char msg[] = "mona says hi";
    ASSERT_TRUE(
        ia.send({reinterpret_cast<const std::byte*>(msg), sizeof(msg) - 1},
                pb.id(), 42)
            .ok());
  });
  sim.run();
  EXPECT_EQ(got, "mona says hi");
}

TEST(MonaP2p, TagMatchingSelectsRightMessage) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pa = net.create_process(0);
  auto& pb = net.create_process(1);
  Instance ia(pa), ib(pb);
  pb.spawn("recv", [&] {
    // Receive tag 2 first even though tag 1 arrives first.
    std::int32_t v = 0;
    std::span<std::byte> buf{reinterpret_cast<std::byte*>(&v), sizeof(v)};
    sim.sleep_for(seconds(1));  // both messages are already queued
    ASSERT_TRUE(ib.recv(buf, pa.id(), 2).ok());
    EXPECT_EQ(v, 222);
    ASSERT_TRUE(ib.recv(buf, pa.id(), 1).ok());
    EXPECT_EQ(v, 111);
  });
  pa.spawn("send", [&] {
    std::int32_t a = 111, b = 222;
    ASSERT_TRUE(
        ia.send({reinterpret_cast<std::byte*>(&a), sizeof(a)}, pb.id(), 1)
            .ok());
    ASSERT_TRUE(
        ia.send({reinterpret_cast<std::byte*>(&b), sizeof(b)}, pb.id(), 2)
            .ok());
  });
  sim.run();
}

TEST(MonaP2p, TruncationIsAnError) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pa = net.create_process(0);
  auto& pb = net.create_process(1);
  Instance ia(pa), ib(pb);
  pb.spawn("recv", [&] {
    std::vector<std::byte> tiny(4);
    EXPECT_EQ(ib.recv(tiny, pa.id(), 0).code(), StatusCode::invalid_argument);
  });
  pa.spawn("send", [&] {
    std::vector<std::byte> big(128);
    ASSERT_TRUE(ia.send(big, pb.id(), 0).ok());
  });
  sim.run();
}

TEST(MonaP2p, CommRankedSendRecv) {
  MonaWorld w(4);
  w.run([&](int rank, Communicator& comm) {
    if (rank == 0) {
      std::int32_t v = 99;
      ASSERT_TRUE(
          comm.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, 3, 5).ok());
    } else if (rank == 3) {
      std::int32_t v = 0;
      ASSERT_TRUE(
          comm.recv({reinterpret_cast<std::byte*>(&v), sizeof(v)}, 0, 5).ok());
      EXPECT_EQ(v, 99);
    }
  });
}

TEST(MonaP2p, IsendIrecvOverlap) {
  MonaWorld w(2);
  w.run([&](int rank, Communicator& comm) {
    std::int64_t out = rank == 0 ? 7 : 13;
    std::int64_t in = 0;
    auto sreq = comm.isend({reinterpret_cast<std::byte*>(&out), sizeof(out)},
                           1 - rank, 0);
    auto rreq = comm.irecv({reinterpret_cast<std::byte*>(&in), sizeof(in)},
                           1 - rank, 0);
    ASSERT_TRUE(sreq.wait().ok());
    ASSERT_TRUE(rreq.wait().ok());
    EXPECT_EQ(in, rank == 0 ? 13 : 7);
  });
}

// --------------------------------------------------- collectives sweep

class MonaCollectives : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, MonaCollectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 24),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST_P(MonaCollectives, Barrier) {
  const int n = GetParam();
  MonaWorld w(n);
  std::vector<des::Time> done(static_cast<std::size_t>(n));
  w.run([&](int rank, Communicator& comm) {
    w.sim.sleep_for(seconds(static_cast<std::uint64_t>(rank)));
    ASSERT_TRUE(comm.barrier().ok());
    done[static_cast<std::size_t>(rank)] = w.sim.now();
  });
  // Nobody may leave the barrier before the last arrival (rank n-1).
  for (int r = 0; r < n; ++r)
    EXPECT_GE(done[static_cast<std::size_t>(r)],
              seconds(static_cast<std::uint64_t>(n - 1)));
}

TEST_P(MonaCollectives, Bcast) {
  const int n = GetParam();
  for (int root = 0; root < n; root += std::max(1, n / 3)) {
    MonaWorld w(n);
    w.run([&](int rank, Communicator& comm) {
      std::vector<std::int64_t> data(
          17, rank == root ? 4242 : 0);
      ASSERT_TRUE(comm.bcast(as_writable(data), root).ok());
      for (auto v : data) EXPECT_EQ(v, 4242) << "rank " << rank;
    });
  }
}

TEST_P(MonaCollectives, ReduceSum) {
  const int n = GetParam();
  const int root = (n - 1) / 2;
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> mine(8);
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = rank + static_cast<int>(i);
    std::vector<std::int64_t> out(8, -1);
    ASSERT_TRUE(comm.reduce(as_bytes_of(mine), as_writable(out), 8,
                            op_sum<std::int64_t>(), root)
                    .ok());
    if (rank == root) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        const std::int64_t expected =
            static_cast<std::int64_t>(n) * (n - 1) / 2 +
            static_cast<std::int64_t>(n) * static_cast<std::int64_t>(i);
        EXPECT_EQ(out[i], expected);
      }
    }
  });
}

TEST_P(MonaCollectives, ReduceBxorSelfInverse) {
  // Property: reducing the same data twice with bxor across an even number
  // of identical contributions gives zero; with distinct contributions the
  // result equals the xor-fold.
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> mine(4, std::int64_t{1} << (rank % 60));
    std::vector<std::int64_t> out(4, -1);
    ASSERT_TRUE(comm.reduce(as_bytes_of(mine), as_writable(out), 4,
                            op_bxor<std::int64_t>(), 0)
                    .ok());
    if (rank == 0) {
      std::int64_t expected = 0;
      for (int r = 0; r < n; ++r) expected ^= std::int64_t{1} << (r % 60);
      for (auto v : out) EXPECT_EQ(v, expected);
    }
  });
}

TEST_P(MonaCollectives, AllreduceMax) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> mine{static_cast<std::int64_t>(rank * 3 % n),
                                   static_cast<std::int64_t>(-rank)};
    std::vector<std::int64_t> out(2, -999);
    ASSERT_TRUE(comm.allreduce(as_bytes_of(mine), as_writable(out), 2,
                               op_max<std::int64_t>())
                    .ok());
    std::int64_t m0 = 0, m1 = 0;
    for (int r = 0; r < n; ++r) {
      m0 = std::max<std::int64_t>(m0, r * 3 % n);
      m1 = std::max<std::int64_t>(m1, -r);
    }
    EXPECT_EQ(out[0], m0) << "rank " << rank;
    EXPECT_EQ(out[1], m1) << "rank " << rank;
  });
}

TEST_P(MonaCollectives, AllreduceSumMatchesReducePlusBcast) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> mine(3, rank + 1);
    std::vector<std::int64_t> a(3), b(3, 0);
    ASSERT_TRUE(
        comm.allreduce(as_bytes_of(mine), as_writable(a), 3,
                       op_sum<std::int64_t>())
            .ok());
    if (rank == 0) b = mine;
    std::vector<std::int64_t> tmp(3);
    ASSERT_TRUE(comm.reduce(as_bytes_of(mine), as_writable(tmp), 3,
                            op_sum<std::int64_t>(), 0)
                    .ok());
    if (rank == 0) b = tmp;
    ASSERT_TRUE(comm.bcast(as_writable(b), 0).ok());
    EXPECT_EQ(a, b) << "rank " << rank;
  });
}

TEST_P(MonaCollectives, Gather) {
  const int n = GetParam();
  const int root = n - 1;
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> mine{rank * 10LL, rank * 10LL + 1};
    std::vector<std::int64_t> all(static_cast<std::size_t>(2 * n), -1);
    ASSERT_TRUE(
        comm.gather(as_bytes_of(mine), as_writable(all), root).ok());
    if (rank == root) {
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r * 10LL);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10LL + 1);
      }
    }
  });
}

TEST_P(MonaCollectives, GathervVariableSizes) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    // Rank r contributes r+1 bytes of value (r+1).
    std::vector<std::size_t> counts(static_cast<std::size_t>(n));
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] = static_cast<std::size_t>(r) + 1;
      total += static_cast<std::size_t>(r) + 1;
    }
    std::vector<std::byte> mine(static_cast<std::size_t>(rank) + 1,
                                std::byte(rank + 1));
    std::vector<std::byte> all(total);
    ASSERT_TRUE(comm.gatherv(mine, all, counts, 0).ok());
    if (rank == 0) {
      std::size_t off = 0;
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i)
          EXPECT_EQ(all[off + i], std::byte(r + 1));
        off += counts[static_cast<std::size_t>(r)];
      }
    }
  });
}

TEST_P(MonaCollectives, ScatterInverseOfGather) {
  const int n = GetParam();
  const int root = n / 2;
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> all;
    if (rank == root) {
      all.resize(static_cast<std::size_t>(3 * n));
      std::iota(all.begin(), all.end(), 1000);
    }
    std::vector<std::int64_t> mine(3, -1);
    ASSERT_TRUE(
        comm.scatter(as_bytes_of(all), as_writable(mine), root).ok());
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(mine[static_cast<std::size_t>(i)], 1000 + 3 * rank + i)
          << "rank " << rank;
  });
}

TEST_P(MonaCollectives, Allgather) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> mine{static_cast<std::int64_t>(rank * rank)};
    std::vector<std::int64_t> all(static_cast<std::size_t>(n), -1);
    ASSERT_TRUE(comm.allgather(as_bytes_of(mine), as_writable(all)).ok());
    for (int r = 0; r < n; ++r)
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * r) << "rank " << rank;
  });
}

TEST_P(MonaCollectives, Alltoall) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    // Block I send to rank d contains value rank*100 + d.
    std::vector<std::int64_t> out(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d)
      out[static_cast<std::size_t>(d)] = rank * 100 + d;
    std::vector<std::int64_t> in(static_cast<std::size_t>(n), -1);
    ASSERT_TRUE(
        comm.alltoall(as_bytes_of(out), as_writable(in), sizeof(std::int64_t))
            .ok());
    for (int s = 0; s < n; ++s)
      EXPECT_EQ(in[static_cast<std::size_t>(s)], s * 100 + rank)
          << "rank " << rank;
  });
}

TEST_P(MonaCollectives, InclusiveScan) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> mine{rank + 1LL};
    std::vector<std::int64_t> out{-1};
    ASSERT_TRUE(comm.scan(as_bytes_of(mine), as_writable(out), 1,
                          op_sum<std::int64_t>())
                    .ok());
    EXPECT_EQ(out[0], (rank + 1LL) * (rank + 2) / 2) << "rank " << rank;
  });
}

TEST_P(MonaCollectives, LinearFallbackReduceSameResult) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    comm.policy.linear_fallback = true;
    comm.policy.linear_threshold = 0;  // always linear
    std::vector<std::int64_t> mine(5, rank);
    std::vector<std::int64_t> out(5, -1);
    ASSERT_TRUE(comm.reduce(as_bytes_of(mine), as_writable(out), 5,
                            op_sum<std::int64_t>(), 0)
                    .ok());
    if (rank == 0) {
      for (auto v : out) {
        EXPECT_EQ(v, static_cast<std::int64_t>(n) * (n - 1) / 2);
      }
    }
  });
}


TEST_P(MonaCollectives, Exscan) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> mine{rank + 1LL};
    std::vector<std::int64_t> out{-1};
    ASSERT_TRUE(comm.exscan(as_bytes_of(mine), as_writable(out), 1,
                            op_sum<std::int64_t>())
                    .ok());
    // Exclusive prefix: rank r gets sum of 1..r (= r(r+1)/2); rank 0 gets 0.
    EXPECT_EQ(out[0], static_cast<std::int64_t>(rank) * (rank + 1) / 2)
        << "rank " << rank;
  });
}

TEST_P(MonaCollectives, Allgatherv) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(n));
    std::size_t total = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] =
          (static_cast<std::size_t>(r) % 3 + 1) * sizeof(std::int64_t);
      total += counts[static_cast<std::size_t>(r)];
    }
    const std::size_t mine_n = static_cast<std::size_t>(rank) % 3 + 1;
    std::vector<std::int64_t> mine(mine_n, rank);
    std::vector<std::byte> all(total);
    ASSERT_TRUE(comm.allgatherv(as_bytes_of(mine), all, counts).ok());
    std::size_t off = 0;
    for (int r = 0; r < n; ++r) {
      const auto cnt = counts[static_cast<std::size_t>(r)] / sizeof(std::int64_t);
      const auto* vals = reinterpret_cast<const std::int64_t*>(all.data() + off);
      for (std::size_t i = 0; i < cnt; ++i)
        ASSERT_EQ(vals[i], r) << "rank " << rank << " block " << r;
      off += counts[static_cast<std::size_t>(r)];
    }
  });
}

TEST_P(MonaCollectives, ReduceScatterBlock) {
  const int n = GetParam();
  MonaWorld w(n);
  w.run([&](int rank, Communicator& comm) {
    // Each rank contributes vector [rank, rank, ...] of length 2n; rank r
    // receives the reduced block r = 2 elements each equal to sum of ranks.
    std::vector<std::int64_t> mine(static_cast<std::size_t>(2 * n), rank);
    std::vector<std::int64_t> out(2, -1);
    ASSERT_TRUE(comm.reduce_scatter_block(as_bytes_of(mine), as_writable(out),
                                          2, op_sum<std::int64_t>())
                    .ok());
    const std::int64_t expected = static_cast<std::int64_t>(n) * (n - 1) / 2;
    EXPECT_EQ(out[0], expected) << "rank " << rank;
    EXPECT_EQ(out[1], expected) << "rank " << rank;
  });
}

TEST(MonaComm, SendrecvExchanges) {
  MonaWorld w(4);
  w.run([&](int rank, Communicator& comm) {
    // Ring exchange: send to the right, receive from the left.
    std::int64_t out = rank * 11;
    std::int64_t in = -1;
    const int right = (rank + 1) % 4;
    const int left = (rank + 3) % 4;
    ASSERT_TRUE(comm.sendrecv(
                        {reinterpret_cast<std::byte*>(&out), sizeof(out)},
                        right, 3,
                        {reinterpret_cast<std::byte*>(&in), sizeof(in)}, left,
                        3)
                    .ok());
    EXPECT_EQ(in, left * 11);
  });
}

// ------------------------------------------------------- other behaviour

TEST(MonaComm, NonBlockingCollectivesComplete) {
  MonaWorld w(8);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> v(4, rank);
    std::vector<std::int64_t> out(4);
    auto r1 = comm.iallreduce(as_bytes_of(v), as_writable(out), 4,
                              op_sum<std::int64_t>());
    auto r2 = comm.ibarrier();
    ASSERT_TRUE(r1.wait().ok());
    ASSERT_TRUE(r2.wait().ok());
    for (auto x : out) EXPECT_EQ(x, 28);  // 0+..+7
  });
}

TEST(MonaComm, TwoCommunicatorsDontCrossTalk) {
  MonaWorld w(4);
  // Build a second communicator over the same members (dup) and run a
  // different collective on each concurrently.
  w.run([&](int rank, Communicator& comm) {
    auto comm2 = comm.dup();
    ASSERT_NE(comm2, nullptr);
    std::vector<std::int64_t> a{rank + 0LL}, outa(1);
    std::vector<std::int64_t> b{rank * 100LL}, outb(1);
    auto r1 = comm.iallreduce(as_bytes_of(a), as_writable(outa), 1,
                              op_sum<std::int64_t>());
    auto r2 = comm2->iallreduce(as_bytes_of(b), as_writable(outb), 1,
                                op_sum<std::int64_t>());
    ASSERT_TRUE(r1.wait().ok());
    ASSERT_TRUE(r2.wait().ok());
    EXPECT_EQ(outa[0], 6);    // 0+1+2+3
    EXPECT_EQ(outb[0], 600);  // (0+1+2+3)*100
  });
}

TEST(MonaComm, SubsetCommunicator) {
  MonaWorld w(6);
  w.run([&](int rank, Communicator& comm) {
    if (rank % 2 != 0) return;  // only even ranks participate
    auto sub = comm.subset({0, 2, 4});
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->size(), 3);
    EXPECT_EQ(sub->rank(), rank / 2);
    std::vector<std::int64_t> v{1};
    std::vector<std::int64_t> out(1);
    ASSERT_TRUE(sub->allreduce(as_bytes_of(v), as_writable(out), 1,
                               op_sum<std::int64_t>())
                    .ok());
    EXPECT_EQ(out[0], 3);
  });
}

TEST(MonaComm, SubsetReturnsNullForNonMembers) {
  MonaWorld w(3);
  w.run([&](int rank, Communicator& comm) {
    if (rank == 2) {
      EXPECT_EQ(comm.instance().comm_create({w.procs[0]->id(),
                                             w.procs[1]->id()}),
                nullptr);
    }
  });
}

TEST(MonaComm, ElasticRecreateAfterJoin) {
  // The Colza pattern: a 3-member group runs a collective; a 4th process
  // appears; everyone builds a fresh communicator from the new address list
  // and the collective now spans 4 members. No world communicator anywhere.
  des::Simulation sim;
  net::Network net(sim);
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<Instance>> insts;
  for (int i = 0; i < 3; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&p);
    insts.push_back(std::make_unique<Instance>(p));
  }
  std::vector<net::ProcId> view{procs[0]->id(), procs[1]->id(),
                                procs[2]->id()};

  // Late joiner created at t=1s.
  sim.schedule_at(seconds(1), [&] {
    auto& p = net.create_process(3);
    procs.push_back(&p);
    insts.push_back(std::make_unique<Instance>(p));
  });

  std::vector<std::int64_t> sums;
  auto round = [&](int nmembers) {
    std::vector<net::ProcId> addrs;
    for (int i = 0; i < nmembers; ++i) addrs.push_back(procs[i]->id());
    for (int i = 0; i < nmembers; ++i) {
      procs[i]->spawn("round", [&, i, addrs] {
        auto comm = insts[i]->comm_create(addrs);
        ASSERT_NE(comm, nullptr);
        std::vector<std::int64_t> v{1};
        std::vector<std::int64_t> out(1);
        ASSERT_TRUE(comm->allreduce(as_bytes_of(v), as_writable(out), 1,
                                    op_sum<std::int64_t>())
                        .ok());
        if (i == 0) sums.push_back(out[0]);
      });
    }
  };

  round(3);
  sim.run();
  sim.schedule_at(seconds(2), [&] { round(4); });
  sim.run();
  EXPECT_EQ(sums, (std::vector<std::int64_t>{3, 4}));
}

TEST(MonaComm, BcastLargeMessage) {
  MonaWorld w(8);
  w.run([&](int rank, Communicator& comm) {
    std::vector<std::int64_t> data(1 << 16);  // 512 KiB
    if (rank == 0)
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::int64_t>(i * 7);
    ASSERT_TRUE(comm.bcast(as_writable(data), 0).ok());
    for (std::size_t i = 0; i < data.size(); i += 997)
      ASSERT_EQ(data[i], static_cast<std::int64_t>(i * 7)) << "rank " << rank;
  });
}

TEST(MonaComm, ReduceTakesLongerWithLinearFallback) {
  auto run = [](bool linear) {
    MonaWorld w(16);
    des::Time elapsed = 0;
    w.run([&](int rank, Communicator& comm) {
      comm.policy.linear_fallback = linear;
      comm.policy.linear_threshold = 0;
      std::vector<std::int64_t> v(4096, rank);  // 32 KiB
      std::vector<std::int64_t> out(4096);
      const des::Time t0 = w.sim.now();
      ASSERT_TRUE(comm.reduce(as_bytes_of(v), as_writable(out), 4096,
                              op_sum<std::int64_t>(), 0)
                      .ok());
      if (rank == 0) elapsed = w.sim.now() - t0;
    });
    return elapsed;
  };
  const des::Time tree = run(false);
  const des::Time linear = run(true);
  EXPECT_GT(linear, tree);
}


TEST(MonaP2p, RecvAnySourceMatchesFirstArrival) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pa = net.create_process(0);
  auto& pb = net.create_process(1);
  auto& pc = net.create_process(2);
  Instance ia(pa), ib(pb), ic(pc);
  pa.spawn("recv", [&] {
    std::int32_t v = 0;
    std::span<std::byte> buf{reinterpret_cast<std::byte*>(&v), sizeof(v)};
    net::ProcId who = net::kInvalidProc;
    // Two any-source receives: must see both senders, nearest-first.
    ASSERT_TRUE(ia.recv_any(buf, 9, &who).ok());
    EXPECT_TRUE(who == pb.id() || who == pc.id());
    const net::ProcId first = who;
    ASSERT_TRUE(ia.recv_any(buf, 9, &who).ok());
    EXPECT_NE(who, first);
  });
  pb.spawn("send", [&] {
    std::int32_t v = 1;
    ASSERT_TRUE(
        ib.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pa.id(), 9)
            .ok());
  });
  pc.spawn("send", [&] {
    std::int32_t v = 2;
    ASSERT_TRUE(
        ic.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pa.id(), 9)
            .ok());
  });
  sim.run();
}

TEST(MonaP2p, RecvAnyFromUnexpectedQueue) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pa = net.create_process(0);
  auto& pb = net.create_process(1);
  Instance ia(pa), ib(pb);
  pa.spawn("recv", [&] {
    sim.sleep_for(seconds(1));  // message already queued as unexpected
    std::int32_t v = 0;
    std::span<std::byte> buf{reinterpret_cast<std::byte*>(&v), sizeof(v)};
    net::ProcId who = net::kInvalidProc;
    ASSERT_TRUE(ia.recv_any(buf, 4, &who).ok());
    EXPECT_EQ(who, pb.id());
    EXPECT_EQ(v, 77);
  });
  pb.spawn("send", [&] {
    std::int32_t v = 77;
    ASSERT_TRUE(
        ib.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pa.id(), 4)
            .ok());
  });
  sim.run();
}

// ------------------------------------------------------- match index
// The (source, tag) hash index replaced linear scans of the posted and
// unexpected queues; these tests pin down the ordering contract it must
// preserve: FIFO per (source, tag), global arrival order for ANY_SOURCE,
// and oldest-post-wins when specific and wildcard receives are both pending.

TEST(MonaMatchIndex, FifoPerSourceAndTag) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pa = net.create_process(0);
  auto& pb = net.create_process(1);
  Instance ia(pa), ib(pb);
  std::vector<std::int32_t> got;
  pa.spawn("recv", [&] {
    sim.sleep_for(seconds(1));  // let every message land unexpected
    for (int i = 0; i < 5; ++i) {
      std::int32_t v = -1;
      ASSERT_TRUE(
          ia.recv({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pb.id(), 7)
              .ok());
      got.push_back(v);
    }
  });
  pb.spawn("send", [&] {
    for (std::int32_t v = 0; v < 5; ++v) {
      ASSERT_TRUE(
          ib.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pa.id(), 7)
              .ok());
    }
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(MonaMatchIndex, WildcardDrainsInArrivalOrder) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pr = net.create_process(0);
  auto& pa = net.create_process(1);
  auto& pb = net.create_process(2);
  Instance ir(pr), ia(pa), ib(pb);
  // Interleave arrivals A, B, A, B by staggering the sends in virtual time.
  auto send_at = [&](Instance& from, net::Process& self, std::int32_t v,
                     int ms) {
    self.spawn("s" + std::to_string(v), [&, v, ms] {
      sim.sleep_for(des::milliseconds(static_cast<std::uint64_t>(ms)));
      std::int32_t payload = v;
      ASSERT_TRUE(from.send({reinterpret_cast<std::byte*>(&payload),
                             sizeof(payload)},
                            pr.id(), 9)
                      .ok());
    });
  };
  send_at(ia, pa, 100, 10);
  send_at(ib, pb, 200, 20);
  send_at(ia, pa, 101, 30);
  send_at(ib, pb, 201, 40);
  std::vector<std::int32_t> got;
  std::vector<net::ProcId> froms;
  pr.spawn("recv", [&] {
    sim.sleep_for(seconds(1));
    for (int i = 0; i < 4; ++i) {
      std::int32_t v = -1;
      net::ProcId who = net::kInvalidProc;
      ASSERT_TRUE(
          ir.recv_any({reinterpret_cast<std::byte*>(&v), sizeof(v)}, 9, &who)
              .ok());
      got.push_back(v);
      froms.push_back(who);
    }
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<std::int32_t>{100, 200, 101, 201}));
  EXPECT_EQ(froms, (std::vector<net::ProcId>{pa.id(), pb.id(), pa.id(),
                                             pb.id()}));
}

TEST(MonaMatchIndex, WildcardSkipsMessagesConsumedBySpecificRecv) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pr = net.create_process(0);
  auto& pa = net.create_process(1);
  auto& pb = net.create_process(2);
  Instance ir(pr), ia(pa), ib(pb);
  // Arrival order: A:1, A:2, B:3 -- the specific receives drain all of A,
  // turning the two oldest arrival-index entries stale; the wildcard must
  // then skip them and still find B's message.
  pa.spawn("sa", [&] {
    for (std::int32_t v : {1, 2}) {
      sim.sleep_for(des::milliseconds(10));
      ASSERT_TRUE(
          ia.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pr.id(), 5)
              .ok());
    }
  });
  pb.spawn("sb", [&] {
    sim.sleep_for(des::milliseconds(100));
    std::int32_t v = 3;
    ASSERT_TRUE(
        ib.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pr.id(), 5)
            .ok());
  });
  pr.spawn("recv", [&] {
    sim.sleep_for(seconds(1));
    std::int32_t v = -1;
    std::span<std::byte> buf{reinterpret_cast<std::byte*>(&v), sizeof(v)};
    ASSERT_TRUE(ir.recv(buf, pa.id(), 5).ok());
    EXPECT_EQ(v, 1);  // FIFO from A
    ASSERT_TRUE(ir.recv(buf, pa.id(), 5).ok());
    EXPECT_EQ(v, 2);
    net::ProcId who = net::kInvalidProc;
    ASSERT_TRUE(ir.recv_any(buf, 5, &who).ok());
    EXPECT_EQ(v, 3);
    EXPECT_EQ(who, pb.id());
  });
  sim.run();
}

TEST(MonaMatchIndex, OldestPostWinsAcrossSpecificAndWildcard) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pr = net.create_process(0);
  auto& pa = net.create_process(1);
  auto& pb = net.create_process(2);
  Instance ir(pr), ia(pa), ib(pb);
  // A specific receive for source A is posted first, then a wildcard for
  // the same tag. A's message must complete the older specific post even
  // though the wildcard also matches; B's message goes to the wildcard.
  std::int32_t specific_got = -1;
  std::int32_t wildcard_got = -1;
  net::ProcId wildcard_from = net::kInvalidProc;
  pr.spawn("specific", [&] {
    std::int32_t v = -1;
    ASSERT_TRUE(
        ir.recv({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pa.id(), 6)
            .ok());
    specific_got = v;
  });
  pr.spawn("wildcard", [&] {
    sim.sleep_for(des::milliseconds(1));  // posts after the specific recv
    std::int32_t v = -1;
    ASSERT_TRUE(ir.recv_any({reinterpret_cast<std::byte*>(&v), sizeof(v)}, 6,
                            &wildcard_from)
                    .ok());
    wildcard_got = v;
  });
  pa.spawn("sa", [&] {
    sim.sleep_for(des::milliseconds(50));
    std::int32_t v = 10;
    ASSERT_TRUE(
        ia.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pr.id(), 6)
            .ok());
  });
  pb.spawn("sb", [&] {
    sim.sleep_for(des::milliseconds(100));
    std::int32_t v = 20;
    ASSERT_TRUE(
        ib.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pr.id(), 6)
            .ok());
  });
  sim.run();
  EXPECT_EQ(specific_got, 10);
  EXPECT_EQ(wildcard_got, 20);
  EXPECT_EQ(wildcard_from, pb.id());
}

TEST(MonaMatchIndex, CompactionDropsStaleEntriesAndWildcardStillMatches) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pr = net.create_process(0);
  auto& pa = net.create_process(1);
  auto& pb = net.create_process(2);
  Instance ir(pr), ia(pa), ib(pb);
  constexpr std::uint64_t kTag = 11;
  constexpr int kFromA = 40;
  // 40 messages from A, then one from B, all landing unexpected.
  pa.spawn("sa", [&] {
    for (std::int32_t v = 0; v < kFromA; ++v) {
      ASSERT_TRUE(
          ia.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pr.id(), kTag)
              .ok());
    }
  });
  pb.spawn("sb", [&] {
    sim.sleep_for(des::milliseconds(500));  // strictly after all of A's
    std::int32_t v = 999;
    ASSERT_TRUE(
        ib.send({reinterpret_cast<std::byte*>(&v), sizeof(v)}, pr.id(), kTag)
            .ok());
  });
  pr.spawn("recv", [&] {
    sim.sleep_for(seconds(1));
    EXPECT_EQ(ir.arrival_index_stats(kTag),
              (std::pair<std::size_t, std::size_t>{41, 41}));
    std::int32_t v = -1;
    std::span<std::byte> buf{reinterpret_cast<std::byte*>(&v), sizeof(v)};
    // Specific receives from A turn arrival-index entries stale one by one.
    // The index compacts when total > 2 * live + 16: with 41 entries that
    // first holds at live == 12, i.e. after the 29th consume.
    for (std::int32_t i = 0; i < 28; ++i) {
      ASSERT_TRUE(ir.recv(buf, pa.id(), kTag).ok());
      EXPECT_EQ(v, i);  // FIFO per source survives the index games
    }
    EXPECT_EQ(ir.arrival_index_stats(kTag),
              (std::pair<std::size_t, std::size_t>{41, 13}));  // 28 stale
    ASSERT_TRUE(ir.recv(buf, pa.id(), kTag).ok());
    EXPECT_EQ(v, 28);
    // Compacted: only the 11 remaining A messages + B's survive, no stale.
    EXPECT_EQ(ir.arrival_index_stats(kTag),
              (std::pair<std::size_t, std::size_t>{12, 12}));
    for (std::int32_t i = 29; i < kFromA; ++i) {
      ASSERT_TRUE(ir.recv(buf, pa.id(), kTag).ok());
      EXPECT_EQ(v, i);
    }
    // Below the compaction threshold again: stale entries linger...
    EXPECT_EQ(ir.arrival_index_stats(kTag),
              (std::pair<std::size_t, std::size_t>{12, 1}));
    // ...and the wildcard must skip all of them to find B's message.
    net::ProcId who = net::kInvalidProc;
    ASSERT_TRUE(ir.recv_any(buf, kTag, &who).ok());
    EXPECT_EQ(v, 999);
    EXPECT_EQ(who, pb.id());
    // Last live message consumed: the whole index is dropped.
    EXPECT_EQ(ir.arrival_index_stats(kTag),
              (std::pair<std::size_t, std::size_t>{0, 0}));
  });
  sim.run();
}

}  // namespace
}  // namespace colza::mona

// Flow control & multi-tenant QoS (docs/flow.md): the DRR weighted fair
// queue, the client-side AIMD window (including the convergence invariant
// that elastic joins/leaves re-probe to fair shares), server-side credit
// accounting with lease expiry and load shedding, the Busy retry-after hint
// path through the client, and the chaos `shed` rule / overload_plan.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "colza/admin.hpp"
#include "colza/backend.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "colza/server.hpp"
#include "common/backoff.hpp"
#include "des/simulation.hpp"
#include "flow/aimd.hpp"
#include "flow/drr.hpp"
#include "flow/flow.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace colza {
namespace {

using des::microseconds;
using des::milliseconds;
using des::seconds;

// ---------------------------------------------------------------- fair_share

TEST(FairShare, Math) {
  EXPECT_EQ(flow::fair_share(100, 1, 4), 25u);
  EXPECT_EQ(flow::fair_share(100, 3, 4), 75u);
  EXPECT_EQ(flow::fair_share(100, 2, 3), 66u);  // floor: never sums over
  EXPECT_EQ(flow::fair_share(100, 5, 0), 100u);  // no tenants: whole pool
}

// ----------------------------------------------------------------------- DRR

TEST(Drr, WeightedServiceConvergesToRatio) {
  flow::DrrQueue<int> q(/*quantum=*/1000);
  q.set_weight("a", 3);
  q.set_weight("b", 1);
  for (int i = 0; i < 40; ++i) {
    q.push("a", 1000 + i, 1000);  // item ids 1000.. are a's
    q.push("b", 2000 + i, 1000);  // 2000.. are b's
  }
  auto always = [](std::uint64_t) { return true; };
  auto never_canceled = [](int) { return false; };
  int a_served = 0;
  int b_served = 0;
  // Over the first 24 pops the byte ratio must track the 3:1 weights within
  // one quantum of slack per tenant (Shreedhar/Varghese fairness bound).
  for (int i = 0; i < 24; ++i) {
    auto item = q.pop(always, never_canceled);
    ASSERT_TRUE(item.has_value());
    (*item < 2000 ? a_served : b_served)++;
  }
  EXPECT_GE(a_served, 17);  // ideal 18
  EXPECT_LE(b_served, 7);   // ideal 6
  EXPECT_GT(b_served, 0);   // ... but never starved
}

TEST(Drr, BudgetHeadOfLineBlocksWithoutLosingDeficit) {
  flow::DrrQueue<int> q(/*quantum=*/1000);
  q.push("a", 1, 3000);  // large head
  q.push("b", 2, 500);
  auto never_canceled = [](int) { return false; };
  // Nothing over 100 bytes fits: the fair-next item head-of-line blocks and
  // pop reports nullopt rather than letting b's small item sneak past once
  // a's deficit covers its head.
  auto tight = [](std::uint64_t cost) { return cost <= 100; };
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(q.pop(tight, never_canceled).has_value());
  }
  EXPECT_EQ(q.queued_items(), 2u);
  // With the budget open, both drain in fair order.
  auto open = [](std::uint64_t) { return true; };
  ASSERT_TRUE(q.pop(open, never_canceled).has_value());
  ASSERT_TRUE(q.pop(open, never_canceled).has_value());
  EXPECT_TRUE(q.empty());
}

TEST(Drr, ZeroWeightTenantIsPausedInPlace) {
  flow::DrrQueue<int> q(/*quantum=*/1000);
  q.set_weight("paused", 0);
  q.set_weight("live", 1);
  q.push("paused", 1, 100);
  q.push("paused", 2, 100);
  q.push("live", 3, 100);
  auto open = [](std::uint64_t) { return true; };
  auto never = [](int) { return false; };
  // The live tenant drains; the paused tenant is skipped, not served and
  // not dropped -- its items stay queued in arrival order.
  auto item = q.pop(open, never);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 3);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(q.pop(open, never).has_value());
  }
  EXPECT_EQ(q.queued_items(), 2u);
  // Resuming serves the held items in their original order.
  q.set_weight("paused", 2);
  item = q.pop(open, never);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 1);
  item = q.pop(open, never);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 2);
  EXPECT_TRUE(q.empty());
}

TEST(Drr, AllTenantsPausedPopsNothing) {
  flow::DrrQueue<int> q(/*quantum=*/1000);
  q.set_weight("a", 0);
  q.set_weight("b", 0);
  q.push("a", 1, 100);
  q.push("b", 2, 100);
  auto open = [](std::uint64_t) { return true; };
  auto never = [](int) { return false; };
  // No live tenant anywhere: pop must terminate (not spin) and report empty
  // service while both backlogs survive intact.
  EXPECT_FALSE(q.pop(open, never).has_value());
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.queued_items(), 2u);
  q.set_weight("a", 1);
  ASSERT_TRUE(q.pop(open, never).has_value());
}

TEST(Drr, CanceledEntriesAreDropped) {
  flow::DrrQueue<int> q(/*quantum=*/1000);
  q.push("a", 1, 100);
  q.push("a", 2, 100);
  auto open = [](std::uint64_t) { return true; };
  auto first_canceled = [](int v) { return v == 1; };
  auto item = q.pop(open, first_canceled);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 2);
  EXPECT_TRUE(q.empty());
}

TEST(Drr, IdleTenantForfeitsDeficit) {
  flow::DrrQueue<int> q(/*quantum=*/100);
  auto open = [](std::uint64_t) { return true; };
  auto never = [](int) { return false; };
  // a builds deficit across several visits for one large item, serves it,
  // then goes idle -- when it comes back its deficit starts from zero.
  q.push("a", 1, 300);
  ASSERT_TRUE(q.pop(open, never).has_value());
  q.push("a", 2, 300);
  q.push("b", 3, 100);
  // a cannot serve instantly (needs 3 visits again); b gets through.
  int b_pos = -1;
  for (int i = 0; i < 2; ++i) {
    auto item = q.pop(open, never);
    ASSERT_TRUE(item.has_value());
    if (*item == 3) b_pos = i;
  }
  EXPECT_GE(b_pos, 0);
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------- AIMD

TEST(Aimd, IncreaseDecreaseBounds) {
  flow::AimdConfig cfg;
  cfg.initial_bytes = 1000;
  cfg.min_bytes = 100;
  cfg.max_bytes = 2000;
  cfg.increase_bytes = 300;
  cfg.decrease_factor = 0.5;
  flow::AimdWindow w(cfg);
  EXPECT_EQ(w.window_bytes(), 1000u);
  w.on_grant();
  EXPECT_EQ(w.window_bytes(), 1300u);
  w.on_grant();
  w.on_grant();
  w.on_grant();
  EXPECT_EQ(w.window_bytes(), 2000u);  // capped
  w.on_busy();
  EXPECT_EQ(w.window_bytes(), 1000u);
  for (int i = 0; i < 10; ++i) w.on_busy();
  EXPECT_EQ(w.window_bytes(), 100u);  // floored
  w.on_view_change();
  EXPECT_EQ(w.window_bytes(), 1000u);  // elastic resize: re-probe
}

TEST(Aimd, OversizedRequestAdmittedAlone) {
  flow::AimdConfig cfg;
  cfg.initial_bytes = 1000;
  flow::AimdWindow w(cfg);
  EXPECT_TRUE(w.try_reserve(5000));  // bigger than the window, but alone
  EXPECT_FALSE(w.try_reserve(1));    // nothing else while it is in flight
  w.release(5000);
  EXPECT_TRUE(w.try_reserve(400));
  EXPECT_TRUE(w.try_reserve(400));
  EXPECT_FALSE(w.try_reserve(400));  // window full, in_flight != 0
}

// The convergence invariant: two clients with different learned operating
// points, sharing one fixed capacity, converge to equal windows under
// synchronized AIMD (equal additive steps, proportional decreases). This is
// what makes elastic joins/leaves re-find fair shares after on_view_change.
TEST(Aimd, ConvergenceInvariant) {
  flow::AimdConfig cfg;
  cfg.initial_bytes = 1 << 20;
  cfg.min_bytes = 1 << 10;
  cfg.max_bytes = 64 << 20;
  cfg.increase_bytes = 64 << 10;
  flow::AimdWindow a(cfg);
  flow::AimdWindow b(cfg);
  // Skew the starting points: a joined late (fresh), b has grown for a while.
  for (int i = 0; i < 100; ++i) b.on_grant();
  ASSERT_GT(b.window_bytes(), 4 * a.window_bytes());

  const std::uint64_t capacity = 16ull << 20;
  for (int round = 0; round < 400; ++round) {
    if (a.window_bytes() + b.window_bytes() > capacity) {
      a.on_busy();
      b.on_busy();
    } else {
      a.on_grant();
      b.on_grant();
    }
  }
  // Windows are within one multiplicative-decrease factor of each other,
  // and their sum oscillates around capacity.
  const double wa = static_cast<double>(a.window_bytes());
  const double wb = static_cast<double>(b.window_bytes());
  EXPECT_LT(std::max(wa, wb) / std::min(wa, wb), 1.5);
  EXPECT_GT(wa + wb, static_cast<double>(capacity) * 0.4);
  EXPECT_LT(wa + wb, static_cast<double>(capacity) * 1.1);
}

// --------------------------------------------------------- Backoff hint floor

TEST(Backoff, NextAtLeastFloorsAtHint) {
  Backoff b(BackoffPolicy{milliseconds(1), 2.0, seconds(1), 0.0, 0});
  EXPECT_EQ(b.next_at_least(milliseconds(50)), milliseconds(50));  // floored
  EXPECT_GE(b.next_at_least(microseconds(1)), milliseconds(2));    // schedule
}

// ----------------------------------------------------------------- ServerFlow

TEST(ServerFlow, DisabledIsZeroCost) {
  des::Simulation sim;
  flow::ServerFlow fl(sim, 7, flow::FlowConfig{});  // budget 0 = disabled
  EXPECT_FALSE(fl.enabled());
  auto r = fl.acquire("p", 1 << 20, 0);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.grant_id, 0u);
  EXPECT_TRUE(fl.consume(0, "p", 1, 0, "", 0, 1 << 20).ok());
  EXPECT_EQ(fl.in_use_bytes(), 0u);
  EXPECT_EQ(fl.staged_bytes(), 0u);
}

TEST(ServerFlow, CreditAccountingAndReplaceSemantics) {
  des::Simulation sim;
  flow::FlowConfig cfg;
  cfg.budget_bytes = 16 << 10;
  auto fl = std::make_unique<flow::ServerFlow>(sim, 7, cfg);
  sim.spawn("t", [&] {
    auto g1 = fl->acquire("p", 4096, 0);
    ASSERT_TRUE(g1.status.ok());
    EXPECT_GT(g1.grant_id, 0u);
    EXPECT_EQ(fl->in_use_bytes(), 4096u);

    ASSERT_TRUE(fl->consume(g1.grant_id, "p", 1, 0, "f", 0, 4096).ok());
    EXPECT_EQ(fl->in_use_bytes(), 4096u);
    EXPECT_EQ(fl->staged_bytes(), 4096u);

    // Idempotent re-stage of the same (block, field, replica): the charge is
    // replaced, not doubled.
    auto g2 = fl->acquire("p", 4096, 0);
    ASSERT_TRUE(g2.status.ok());
    ASSERT_TRUE(fl->consume(g2.grant_id, "p", 1, 0, "f", 0, 4096).ok());
    EXPECT_EQ(fl->staged_bytes(), 4096u);
    EXPECT_EQ(fl->in_use_bytes(), 4096u);

    // A different replica rank is a distinct slot.
    auto g3 = fl->acquire("p", 4096, 0);
    ASSERT_TRUE(g3.status.ok());
    ASSERT_TRUE(fl->consume(g3.grant_id, "p", 1, 0, "f", 1, 4096).ok());
    EXPECT_EQ(fl->staged_bytes(), 8192u);

    // RDMA-pull failure rollback.
    fl->uncharge_block("p", 1, 0, "f", 1);
    EXPECT_EQ(fl->staged_bytes(), 4096u);

    fl->free_iteration("p", 1);
    EXPECT_EQ(fl->staged_bytes(), 0u);
    EXPECT_EQ(fl->in_use_bytes(), 0u);
    EXPECT_GE(fl->peak_staged_bytes(), 8192u);

    // Released (abandoned) grants give their credit back.
    auto g4 = fl->acquire("p", 1024, 0);
    ASSERT_TRUE(g4.status.ok());
    fl->release(g4.grant_id);
    EXPECT_EQ(fl->in_use_bytes(), 0u);
  });
  sim.run();
}

TEST(ServerFlow, OversizedRequestCanNeverFit) {
  des::Simulation sim;
  flow::FlowConfig cfg;
  cfg.budget_bytes = 1024;
  flow::ServerFlow fl(sim, 7, cfg);
  sim.spawn("t", [&] {
    auto r = fl.acquire("p", 4096, 0);
    EXPECT_EQ(r.status.code(), StatusCode::failed_precondition);
  });
  sim.run();
}

TEST(ServerFlow, LeaseExpiryReclaimsUnconsumedGrant) {
  des::Simulation sim;
  flow::FlowConfig cfg;
  cfg.budget_bytes = 8192;
  cfg.lease_ttl = milliseconds(100);
  flow::ServerFlow fl(sim, 7, cfg);
  sim.spawn("t", [&] {
    auto g = fl.acquire("p", 8192, 0);
    ASSERT_TRUE(g.status.ok());
    EXPECT_EQ(fl.in_use_bytes(), 8192u);
    sim.sleep_for(milliseconds(200));
    EXPECT_EQ(fl.in_use_bytes(), 0u);  // lease expired, credit reclaimed
    // The spent lease is gone: a late consume is treated as un-credited but
    // still fits the (now free) budget.
    EXPECT_TRUE(fl.consume(g.grant_id, "p", 1, 0, "f", 0, 1024).ok());
    EXPECT_EQ(fl.staged_bytes(), 1024u);
  });
  sim.run();
}

TEST(ServerFlow, ShedsWithRetryHintWhenQueueDisallowed) {
  des::Simulation sim;
  flow::FlowConfig cfg;
  cfg.budget_bytes = 4096;
  cfg.max_queue = 0;  // no queueing: every non-fitting acquire sheds
  flow::ServerFlow fl(sim, 7, cfg);
  sim.spawn("t", [&] {
    auto g = fl.acquire("p", 4096, 0);
    ASSERT_TRUE(g.status.ok());
    auto r = fl.acquire("p", 1024, 0);
    EXPECT_EQ(r.status.code(), StatusCode::busy);
    EXPECT_GE(r.status.retry_after_us(), 100u);  // hint never zero
    EXPECT_GE(fl.sheds_total(), 1u);
  });
  sim.run();
}

TEST(ServerFlow, DeadlineDerivedBoundSheds) {
  des::Simulation sim;
  flow::FlowConfig cfg;
  cfg.budget_bytes = 4096;
  cfg.drain_gbps = 1e-6;  // backlog effectively never drains
  flow::ServerFlow fl(sim, 7, cfg);
  sim.spawn("t", [&] {
    fl.inject_pressure(4096);
    // Queue admission would be pointless: the backlog cannot drain before
    // the caller's deadline, so the acquire is shed immediately.
    auto r = fl.acquire("p", 1024, sim.now() + milliseconds(1));
    EXPECT_EQ(r.status.code(), StatusCode::busy);
    EXPECT_GT(r.status.retry_after_us(), 0u);
  });
  sim.run();
}

TEST(ServerFlow, QueuedAcquireGrantedOnRelease) {
  des::Simulation sim;
  flow::FlowConfig cfg;
  cfg.budget_bytes = 8192;
  flow::ServerFlow fl(sim, 7, cfg);
  std::uint64_t held = 0;
  bool granted = false;
  sim.spawn("holder", [&] {
    auto g = fl.acquire("p", 8192, 0);
    ASSERT_TRUE(g.status.ok());
    held = g.grant_id;
  });
  sim.spawn("waiter", [&] {
    sim.sleep_for(milliseconds(1));
    const des::Time t0 = sim.now();
    auto g = fl.acquire("q", 4096, 0);  // queues: budget is fully held
    ASSERT_TRUE(g.status.ok());
    EXPECT_GE(sim.now() - t0, milliseconds(9));
    granted = true;
  });
  sim.spawn("releaser", [&] {
    sim.sleep_for(milliseconds(10));
    fl.release(held);
  });
  sim.run();
  EXPECT_TRUE(granted);
}

// Two pipelines, weights 3:1, all waiters queued behind injected pressure.
// As budget frees, DRR must interleave grants at the weight ratio: among any
// early grant prefix, pipeline a stays close to 3x pipeline b.
TEST(ServerFlow, WeightedGrantOrderFollowsDrr) {
  des::Simulation sim;
  flow::FlowConfig cfg;
  cfg.budget_bytes = 4096;
  cfg.quantum_bytes = 1024;
  cfg.drain_gbps = 1000.0;  // keep the drain bound out of the way
  flow::ServerFlow fl(sim, 7, cfg);
  fl.set_weight("a", 3);
  fl.set_weight("b", 1);
  std::vector<std::string> grant_order;
  sim.spawn("setup", [&] { fl.inject_pressure(4096); });
  for (int i = 0; i < 8; ++i) {
    for (const std::string name : {std::string("a"), std::string("b")}) {
      sim.spawn("w", [&, name] {
        sim.sleep_for(milliseconds(1));
        auto g = fl.acquire(name, 1024, 0);
        ASSERT_TRUE(g.status.ok()) << g.status.to_string();
        grant_order.push_back(name);
        // Hand the credit straight back so the next waiter can be served.
        fl.release(g.grant_id);
      });
    }
  }
  sim.spawn("release", [&] {
    sim.sleep_for(milliseconds(5));
    fl.release_pressure();
  });
  sim.run();
  ASSERT_EQ(grant_order.size(), 16u);
  int a_early = 0;
  for (int i = 0; i < 8; ++i) a_early += grant_order[i] == "a" ? 1 : 0;
  EXPECT_GE(a_early, 5);  // ideal 6 of the first 8 at weights 3:1
  EXPECT_LE(a_early, 7);  // b is never starved
}

TEST(ServerFlow, QuotaJsonReflectsState) {
  des::Simulation sim;
  flow::FlowConfig cfg;
  cfg.budget_bytes = 1 << 20;
  flow::ServerFlow fl(sim, 9, cfg);
  fl.set_weight("iso", 3);
  sim.spawn("t", [&] {
    fl.inject_pressure(4096);
    auto g = fl.acquire("iso", 1024, 0);
    ASSERT_TRUE(g.status.ok());
    const json::Value q = fl.quota_json();
    EXPECT_EQ(q.number_or("budget_bytes", 0), static_cast<double>(1 << 20));
    EXPECT_EQ(q.number_or("pressure_bytes", 0), 4096.0);
    EXPECT_EQ(q.number_or("in_use_bytes", 0), 4096.0 + 1024.0);
    EXPECT_EQ(q.number_or("grants_outstanding", 0), 1.0);
    const json::Value* w = q.find("weights");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->number_or("iso", 0), 3.0);
  });
  sim.run();
}

// ------------------------------------------------------------ chaos shed rule

TEST(ChaosShed, JsonRoundTripAndStrictness) {
  const auto plan = chaos::ChaosPlan::from_json(R"({
    "seed": 5,
    "rules": [
      {"kind": "shed", "target": 3, "at_us": 1000, "heal_us": 2000,
       "bytes": 1048576}
    ]
  })");
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_EQ(plan.rules[0].kind, chaos::RuleKind::shed);
  EXPECT_EQ(plan.rules[0].target, 3u);
  EXPECT_EQ(plan.rules[0].bytes, 1048576u);
  EXPECT_EQ(plan.rules[0].at, milliseconds(1));
  EXPECT_EQ(plan.rules[0].heal_at, milliseconds(2));
  // Strict parsing still rejects typos.
  EXPECT_THROW(chaos::ChaosPlan::from_json(
                   R"({"rules":[{"kind":"shed","bites":1}]})"),
               std::runtime_error);
}

TEST(ChaosShed, OverloadPlanIsSeededAndShaped) {
  const auto plan =
      chaos::overload_plan(/*base_server=*/1, /*servers=*/3,
                           /*start=*/seconds(1), /*period=*/seconds(2),
                           /*burst=*/milliseconds(500), /*bursts=*/6,
                           /*bytes=*/1 << 20, /*seed=*/42);
  ASSERT_EQ(plan.rules.size(), 6u);
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    const chaos::Rule& r = plan.rules[i];
    EXPECT_EQ(r.kind, chaos::RuleKind::shed);
    EXPECT_GE(r.target, 1u);
    EXPECT_LT(r.target, 4u);
    EXPECT_EQ(r.at, seconds(1) + static_cast<des::Duration>(i) * seconds(2));
    EXPECT_EQ(r.heal_at, r.at + milliseconds(500));
    EXPECT_EQ(r.bytes, 1u << 20);
  }
  // Same seed, same victims; different seed, (almost surely) different.
  const auto again = chaos::overload_plan(1, 3, seconds(1), seconds(2),
                                          milliseconds(500), 6, 1 << 20, 42);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(plan.rules[i].target, again.rules[i].target);
  }
}

TEST(ChaosShed, InjectionSqueezesRegisteredServer) {
  des::Simulation sim;
  net::Network net(sim);
  flow::FlowConfig cfg;
  cfg.budget_bytes = 1 << 20;
  flow::ServerFlow fl(sim, 3, cfg);

  chaos::ChaosPlan plan;
  chaos::Rule r;
  r.kind = chaos::RuleKind::shed;
  r.target = 3;
  r.at = milliseconds(10);
  r.heal_at = milliseconds(30);
  r.bytes = 1 << 20;
  plan.rules.push_back(r);
  chaos::ChaosEngine engine(std::move(plan));
  engine.attach(net);

  sim.spawn("probe", [&] {
    sim.sleep_for(milliseconds(20));
    EXPECT_EQ(fl.in_use_bytes(), 1u << 20);  // squeezed
    sim.sleep_for(milliseconds(20));
    EXPECT_EQ(fl.in_use_bytes(), 0u);  // released
  });
  sim.run();
  ASSERT_EQ(engine.log().size(), 2u);
  EXPECT_EQ(engine.log()[0].kind, chaos::RuleKind::shed);
  EXPECT_EQ(engine.log()[0].src, 3u);
  EXPECT_EQ(engine.log()[1].delta, 1);  // release record
}

// ------------------------------------------------------------------- end2end

class CountingBackend final : public Backend {
 public:
  explicit CountingBackend(Context ctx) : Backend(std::move(ctx)) {}
  Status activate(std::uint64_t) override { return Status::Ok(); }
  Status stage(StagedBlock b) override {
    bytes_ += b.data.size();
    return Status::Ok();
  }
  Status execute(std::uint64_t) override { return Status::Ok(); }
  Status deactivate(std::uint64_t) override { return Status::Ok(); }

 private:
  std::size_t bytes_ = 0;
};

COLZA_REGISTER_BACKEND("flow-sink", CountingBackend)

class FlowWorld {
 public:
  FlowWorld(int n, flow::FlowConfig flow_cfg, std::uint64_t seed = 11)
      : sim(des::SimConfig{.seed = seed}), net(sim) {
    ServerConfig cfg;
    cfg.init_cost = milliseconds(50);
    cfg.flow = flow_cfg;
    LaunchModel instant{milliseconds(10), 0.0, milliseconds(10)};
    area = std::make_unique<StagingArea>(net, cfg, instant, seed);
    area->launch_initial(n, /*base_node=*/100);
    sim.run_until(seconds(2));
    client_proc = &net.create_process(0);
    client = std::make_unique<Client>(*client_proc);
  }

  void create_everywhere(const std::string& name, const std::string& type) {
    client_proc->spawn("admin", [this, name, type] {
      Admin admin(client->engine());
      for (net::ProcId s : area->alive_addresses()) {
        ASSERT_TRUE(admin.create_pipeline(s, name, type).ok());
      }
    });
    sim.run();
  }

  des::Simulation sim;
  net::Network net;
  std::unique_ptr<StagingArea> area;
  net::Process* client_proc = nullptr;
  std::unique_ptr<Client> client;
};

// A flow-enabled client under a fully squeezed budget: every stage is shed
// with Busy until the pressure lifts, the client honors the retry-after hint
// (it keeps backing off rather than failing), and the iteration completes
// with zero client-visible errors once budget frees.
TEST(FlowEndToEnd, BusyIsRetriedUntilPressureLifts) {
  obs::MetricsRegistry::global().reset();
  flow::FlowConfig fcfg;
  fcfg.budget_bytes = 64 << 10;
  fcfg.max_queue = 0;  // force the shed/Busy path instead of server queueing
  FlowWorld w(2, fcfg);
  w.create_everywhere("pipe", "flow-sink");

  // Squeeze both servers completely, lift after 50 ms.
  for (net::ProcId s : w.area->alive_addresses()) {
    flow::ServerFlow* fl = flow::Registry::find(&w.sim, s);
    ASSERT_NE(fl, nullptr);
    fl->inject_pressure(fcfg.budget_bytes);
  }
  w.sim.schedule_after(milliseconds(50), [&] {
    for (net::ProcId s : w.area->alive_addresses()) {
      flow::Registry::find(&w.sim, s)->release_pressure();
    }
  });

  bool done = false;
  w.client_proc->spawn("app", [&] {
    auto h = DistributedPipelineHandle::lookup(
        *w.client, w.area->bootstrap().contacts(), "pipe");
    ASSERT_TRUE(h.has_value());
    h->set_flow_control(FlowClientOptions{.enabled = true});
    ASSERT_TRUE(h->activate(1).ok());
    const des::Time t0 = w.sim.now();
    std::vector<std::byte> data(4096, std::byte{5});
    ASSERT_TRUE(h->stage(1, 0, data).ok());
    EXPECT_GE(w.sim.now() - t0, milliseconds(50));  // blocked on the squeeze
    ASSERT_TRUE(h->execute(1).ok());
    ASSERT_TRUE(h->deactivate(1).ok());
    done = true;
  });
  w.sim.run();
  ASSERT_TRUE(done);
  // The squeeze was visible as Busy sheds, absorbed by client retries.
  EXPECT_GT(obs::MetricsRegistry::global().counter("flow.client.busy").value,
            0u);
}

// Sustained staging against a tight budget: admission keeps every server's
// peak staged bytes within its budget while all iterations succeed.
TEST(FlowEndToEnd, PeakStagedBytesNeverExceedBudget) {
  flow::FlowConfig fcfg;
  fcfg.budget_bytes = 32 << 10;
  FlowWorld w(2, fcfg);
  w.create_everywhere("pipe", "flow-sink");

  bool done = false;
  w.client_proc->spawn("app", [&] {
    auto h = DistributedPipelineHandle::lookup(
        *w.client, w.area->bootstrap().contacts(), "pipe");
    ASSERT_TRUE(h.has_value());
    h->set_flow_control(FlowClientOptions{.enabled = true});
    std::vector<std::byte> data(4096, std::byte{9});
    for (std::uint64_t it = 1; it <= 6; ++it) {
      ASSERT_TRUE(h->activate(it).ok());
      for (std::uint64_t b = 0; b < 6; ++b) {
        ASSERT_TRUE(h->stage(it, b, data).ok()) << "it=" << it << " b=" << b;
      }
      ASSERT_TRUE(h->execute(it).ok());
      ASSERT_TRUE(h->deactivate(it).ok());
    }
    done = true;
  });
  w.sim.run();
  ASSERT_TRUE(done);
  for (net::ProcId s : w.area->alive_addresses()) {
    flow::ServerFlow* fl = flow::Registry::find(&w.sim, s);
    ASSERT_NE(fl, nullptr);
    EXPECT_GT(fl->peak_staged_bytes(), 0u);
    EXPECT_LE(fl->peak_staged_bytes(), fcfg.budget_bytes);
    EXPECT_EQ(fl->staged_bytes(), 0u);  // everything freed by deactivate
  }
}

// Flow control disabled (the default) must leave the protocol untouched:
// grant_id 0 rides the wire and servers charge nothing.
TEST(FlowEndToEnd, DisabledFlowIsInvisible) {
  FlowWorld w(2, flow::FlowConfig{});  // budget 0
  w.create_everywhere("pipe", "flow-sink");
  bool done = false;
  w.client_proc->spawn("app", [&] {
    auto h = DistributedPipelineHandle::lookup(
        *w.client, w.area->bootstrap().contacts(), "pipe");
    ASSERT_TRUE(h.has_value());
    EXPECT_FALSE(h->flow_control_enabled());
    ASSERT_TRUE(h->activate(1).ok());
    std::vector<std::byte> data(4096, std::byte{1});
    ASSERT_TRUE(h->stage(1, 0, data).ok());
    ASSERT_TRUE(h->execute(1).ok());
    ASSERT_TRUE(h->deactivate(1).ok());
    done = true;
  });
  w.sim.run();
  ASSERT_TRUE(done);
  for (net::ProcId s : w.area->alive_addresses()) {
    flow::ServerFlow* fl = flow::Registry::find(&w.sim, s);
    ASSERT_NE(fl, nullptr);
    EXPECT_FALSE(fl->enabled());
    EXPECT_EQ(fl->staged_bytes(), 0u);
  }
}

}  // namespace
}  // namespace colza

// Tests for the static MPI-like baseline: world construction, vendor
// profiles, collective correctness, and the modeled vendor differences
// (Cray faster than OpenMPI; OpenMPI's large-message collective collapse).
#include <gtest/gtest.h>

#include <vector>

#include "des/simulation.hpp"
#include "net/network.hpp"
#include "simmpi/simmpi.hpp"

namespace colza::simmpi {
namespace {

std::span<const std::byte> as_bytes_of(const std::vector<std::int64_t>& v) {
  return {reinterpret_cast<const std::byte*>(v.data()),
          v.size() * sizeof(std::int64_t)};
}
std::span<std::byte> as_writable(std::vector<std::int64_t>& v) {
  return {reinterpret_cast<std::byte*>(v.data()),
          v.size() * sizeof(std::int64_t)};
}

TEST(SimMpi, WorldHasContiguousRanks) {
  des::Simulation sim;
  net::Network net(sim);
  MpiJob job(net, 8, 4, Vendor::cray_mpich);
  EXPECT_EQ(job.size(), 8);
  int count = 0;
  job.launch([&](int rank, mona::Communicator& world) {
    EXPECT_EQ(world.rank(), rank);
    EXPECT_EQ(world.size(), 8);
    ++count;
  });
  sim.run();
  EXPECT_EQ(count, 8);
}

TEST(SimMpi, ProcessesPackedOntoNodes) {
  des::Simulation sim;
  net::Network net(sim);
  MpiJob job(net, 8, 4, Vendor::cray_mpich, /*base_node=*/10);
  EXPECT_EQ(job.process(0).node(), 10u);
  EXPECT_EQ(job.process(3).node(), 10u);
  EXPECT_EQ(job.process(4).node(), 11u);
  EXPECT_EQ(job.process(7).node(), 11u);
}

TEST(SimMpi, AllreduceCorrectBothVendors) {
  for (Vendor v : {Vendor::cray_mpich, Vendor::openmpi}) {
    des::Simulation sim;
    net::Network net(sim);
    MpiJob job(net, 12, 4, v);
    job.launch([&](int rank, mona::Communicator& world) {
      std::vector<std::int64_t> in{rank + 1LL};
      std::vector<std::int64_t> out(1);
      ASSERT_TRUE(world
                      .allreduce(as_bytes_of(in), as_writable(out), 1,
                                 mona::op_sum<std::int64_t>())
                      .ok());
      EXPECT_EQ(out[0], 78);  // 1+..+12
    });
    sim.run();
  }
}

TEST(SimMpi, OpenMpiInheritsLinearFallbackPolicy) {
  des::Simulation sim;
  net::Network net(sim);
  MpiJob cray(net, 2, 2, Vendor::cray_mpich);
  MpiJob omp(net, 2, 2, Vendor::openmpi, /*base_node=*/4);
  EXPECT_FALSE(cray.world(0).policy.linear_fallback);
  EXPECT_TRUE(omp.world(0).policy.linear_fallback);
}

TEST(SimMpi, CrayPingPongFasterThanOpenMpi) {
  auto pingpong = [](Vendor v, std::size_t bytes) {
    des::Simulation sim;
    net::Network net(sim);
    MpiJob job(net, 2, 1, v);
    des::Duration elapsed = 0;
    job.launch([&](int rank, mona::Communicator& world) {
      std::vector<std::byte> buf(bytes);
      const des::Time t0 = sim.now();
      for (int i = 0; i < 10; ++i) {
        if (rank == 0) {
          ASSERT_TRUE(world.send(buf, 1, 0).ok());
          ASSERT_TRUE(world.recv(buf, 1, 0).ok());
        } else {
          ASSERT_TRUE(world.recv(buf, 0, 0).ok());
          ASSERT_TRUE(world.send(buf, 0, 0).ok());
        }
      }
      if (rank == 0) elapsed = sim.now() - t0;
    });
    sim.run();
    return elapsed;
  };
  for (std::size_t bytes : {8u, 2048u, 16384u, 524288u}) {
    EXPECT_LT(pingpong(Vendor::cray_mpich, bytes),
              pingpong(Vendor::openmpi, bytes))
        << bytes;
  }
}

TEST(SimMpi, OpenMpiLargeReduceCollapses) {
  // Table II shape: at 32 KiB payloads OpenMPI's reduce must be at least two
  // orders of magnitude slower than Cray-mpich's.
  auto reduce_time = [](Vendor v) {
    des::Simulation sim;
    net::Network net(sim);
    MpiJob job(net, 32, 8, v);
    des::Duration elapsed = 0;
    job.launch([&](int rank, mona::Communicator& world) {
      std::vector<std::int64_t> in(4096, rank), out(4096);  // 32 KiB
      const des::Time t0 = sim.now();
      ASSERT_TRUE(world
                      .reduce(as_bytes_of(in), as_writable(out), 4096,
                              mona::op_bxor<std::int64_t>(), 0)
                      .ok());
      ASSERT_TRUE(world.barrier().ok());
      if (rank == 0) elapsed = sim.now() - t0;
    });
    sim.run();
    return elapsed;
  };
  const auto cray = reduce_time(Vendor::cray_mpich);
  const auto omp = reduce_time(Vendor::openmpi);
  EXPECT_GT(omp, 20 * cray);  // grows to ~3 orders of magnitude at 512 procs
}

TEST(SimMpi, VendorNames) {
  EXPECT_EQ(to_string(Vendor::cray_mpich), "cray-mpich");
  EXPECT_EQ(to_string(Vendor::openmpi), "openmpi");
}

TEST(SimMpi, InvalidSizesThrow) {
  des::Simulation sim;
  net::Network net(sim);
  EXPECT_THROW(MpiJob(net, 0, 1, Vendor::cray_mpich), std::invalid_argument);
  EXPECT_THROW(MpiJob(net, 4, 0, Vendor::cray_mpich), std::invalid_argument);
}

}  // namespace
}  // namespace colza::simmpi

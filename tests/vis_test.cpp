// Tests for the visualization data model and filters: arrays, grids,
// serialization round trips, isosurface properties, clipping, thresholding,
// merging, and resampling.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "vis/data.hpp"
#include "vis/filters.hpp"
#include "vis/vtk_writer.hpp"

namespace colza::vis {
namespace {

// Builds a uniform grid with a radial distance field ||p - c||.
UniformGrid sphere_grid(std::uint32_t n, Vec3 center, float spacing = 1.0f) {
  UniformGrid g;
  g.dims = {n, n, n};
  g.origin = {0, 0, 0};
  g.spacing = {spacing, spacing, spacing};
  std::vector<float> f(g.point_count());
  for (std::uint32_t k = 0; k < n; ++k) {
    for (std::uint32_t j = 0; j < n; ++j) {
      for (std::uint32_t i = 0; i < n; ++i) {
        f[g.point_index(i, j, k)] = (g.point(i, j, k) - center).norm();
      }
    }
  }
  g.point_data.add(DataArray::make<float>("dist", f));
  return g;
}

// ----------------------------------------------------------------- arrays

TEST(DataArray, TypedAccess) {
  std::vector<float> v{1.0f, 2.0f, 3.0f};
  auto a = DataArray::make<float>("temp", v);
  EXPECT_EQ(a.name(), "temp");
  EXPECT_EQ(a.type(), DataType::f32);
  EXPECT_EQ(a.value_count(), 3u);
  EXPECT_EQ(a.tuple_count(), 3u);
  EXPECT_EQ(a.as<float>()[1], 2.0f);
  EXPECT_THROW((void)a.as<double>(), std::runtime_error);
}

TEST(DataArray, MultiComponent) {
  std::vector<double> v(12);
  auto a = DataArray::make<double>("velocity", v, 3);
  EXPECT_EQ(a.value_count(), 12u);
  EXPECT_EQ(a.tuple_count(), 4u);
}

TEST(FieldData, FindByName) {
  FieldData fd;
  fd.add(DataArray::make<float>("a", std::vector<float>{1}));
  fd.add(DataArray::make<float>("b", std::vector<float>{2}));
  ASSERT_NE(fd.find("b"), nullptr);
  EXPECT_EQ(fd.find("b")->as<float>()[0], 2.0f);
  EXPECT_EQ(fd.find("c"), nullptr);
}

// ------------------------------------------------------------------ grids

TEST(UniformGrid, CountsAndIndexing) {
  UniformGrid g;
  g.dims = {4, 3, 2};
  EXPECT_EQ(g.point_count(), 24u);
  EXPECT_EQ(g.cell_count(), 6u);
  EXPECT_EQ(g.point_index(0, 0, 0), 0u);
  EXPECT_EQ(g.point_index(3, 2, 1), 23u);
}

TEST(UniformGrid, PointPositionsAndBounds) {
  UniformGrid g;
  g.dims = {3, 3, 3};
  g.origin = {1, 2, 3};
  g.spacing = {0.5f, 1.0f, 2.0f};
  EXPECT_EQ(g.point(2, 2, 2), (Vec3{2.0f, 4.0f, 7.0f}));
  const Aabb b = g.bounds();
  EXPECT_EQ(b.lo, (Vec3{1, 2, 3}));
  EXPECT_EQ(b.hi, (Vec3{2, 4, 7}));
}

TEST(UnstructuredGrid, AddAndAccessCells) {
  UnstructuredGrid g;
  g.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const std::uint32_t tet[] = {0, 1, 2, 3};
  g.add_cell(CellType::tetra, tet);
  EXPECT_EQ(g.cell_count(), 1u);
  EXPECT_EQ(g.cell(0).size(), 4u);
  EXPECT_EQ(g.cell(0)[3], 3u);
}

TEST(DataSet, SerializationRoundTrip) {
  UniformGrid g = sphere_grid(5, {2, 2, 2});
  auto bytes = serialize_dataset(g);
  DataSet ds = deserialize_dataset(bytes);
  ASSERT_TRUE(std::holds_alternative<UniformGrid>(ds));
  const auto& g2 = std::get<UniformGrid>(ds);
  EXPECT_EQ(g2.dims, g.dims);
  EXPECT_EQ(g2.point_data.find("dist")->as<float>()[7],
            g.point_data.find("dist")->as<float>()[7]);
}

TEST(DataSet, SerializeUnstructuredAndMesh) {
  UnstructuredGrid u;
  u.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const std::uint32_t tet[] = {0, 1, 2, 3};
  u.add_cell(CellType::tetra, tet);
  u.cell_data.add(DataArray::make<float>("v", std::vector<float>{3.5f}));
  auto ds = deserialize_dataset(serialize_dataset(u));
  ASSERT_TRUE(std::holds_alternative<UnstructuredGrid>(ds));
  EXPECT_EQ(std::get<UnstructuredGrid>(ds).types[0], CellType::tetra);

  TriangleMesh m;
  m.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  m.triangles = {0, 1, 2};
  auto ds2 = deserialize_dataset(serialize_dataset(m));
  ASSERT_TRUE(std::holds_alternative<TriangleMesh>(ds2));
  EXPECT_EQ(std::get<TriangleMesh>(ds2).triangle_count(), 1u);
}

// -------------------------------------------------------------- isosurface

TEST(Isosurface, SphereVerticesLieOnIsoValue) {
  const Vec3 c{8, 8, 8};
  UniformGrid g = sphere_grid(17, c);
  TriangleMesh m = isosurface(g, "dist", 5.0f);
  ASSERT_GT(m.triangle_count(), 100u);
  // Every generated vertex must sit (approximately) on the r=5 sphere.
  for (const Vec3& p : m.points) {
    EXPECT_NEAR((p - c).norm(), 5.0f, 0.35f);
  }
}

TEST(Isosurface, SphereAreaMatchesAnalytic) {
  const Vec3 c{10, 10, 10};
  UniformGrid g = sphere_grid(21, c);
  const float r = 6.0f;
  TriangleMesh m = isosurface(g, "dist", r);
  double area = 0;
  for (std::size_t t = 0; t < m.triangle_count(); ++t) {
    const Vec3 a = m.points[m.triangles[3 * t]];
    const Vec3 b = m.points[m.triangles[3 * t + 1]];
    const Vec3 d = m.points[m.triangles[3 * t + 2]];
    area += 0.5 * static_cast<double>((b - a).cross(d - a).norm());
  }
  const double expected = 4.0 * M_PI * r * r;
  EXPECT_NEAR(area, expected, expected * 0.1);
}

TEST(Isosurface, NormalsPointRadially) {
  const Vec3 c{8, 8, 8};
  UniformGrid g = sphere_grid(17, c);
  TriangleMesh m = isosurface(g, "dist", 5.0f);
  ASSERT_EQ(m.normals.size(), m.points.size());
  // The gradient of ||p - c|| is the outward radial direction.
  std::size_t good = 0;
  for (std::size_t i = 0; i < m.points.size(); ++i) {
    const Vec3 radial = (m.points[i] - c).normalized();
    if (radial.dot(m.normals[i]) > 0.9f) ++good;
  }
  EXPECT_GT(good, m.points.size() * 9 / 10);
}

TEST(Isosurface, EmptyWhenIsoOutsideRange) {
  UniformGrid g = sphere_grid(9, {4, 4, 4});
  EXPECT_EQ(isosurface(g, "dist", 1000.0f).triangle_count(), 0u);
  EXPECT_EQ(isosurface(g, "dist", -5.0f).triangle_count(), 0u);
}

TEST(Isosurface, ColorFieldInterpolated) {
  UniformGrid g = sphere_grid(9, {4, 4, 4});
  // Secondary field = x coordinate.
  std::vector<float> xs(g.point_count());
  for (std::uint32_t k = 0; k < 9; ++k)
    for (std::uint32_t j = 0; j < 9; ++j)
      for (std::uint32_t i = 0; i < 9; ++i)
        xs[g.point_index(i, j, k)] = static_cast<float>(i);
  g.point_data.add(DataArray::make<float>("x", xs));
  TriangleMesh m = isosurface(g, "dist", 3.0f, "x");
  ASSERT_FALSE(m.points.empty());
  for (std::size_t i = 0; i < m.points.size(); ++i) {
    EXPECT_NEAR(m.scalars[i], m.points[i].x, 0.51f);
  }
}

TEST(Isosurface, MissingFieldThrows) {
  UniformGrid g = sphere_grid(5, {2, 2, 2});
  EXPECT_THROW(isosurface(g, "nope", 1.0f), std::runtime_error);
}

// ------------------------------------------------------------------ clip

TEST(Clip, KeepsCorrectHalfSpace) {
  UniformGrid g = sphere_grid(17, {8, 8, 8});
  TriangleMesh m = isosurface(g, "dist", 5.0f);
  TriangleMesh clipped = clip_by_plane(m, {8, 8, 8}, {1, 0, 0});
  ASSERT_GT(clipped.triangle_count(), 0u);
  ASSERT_LT(clipped.triangle_count(), m.triangle_count() * 0.7);
  for (const Vec3& p : clipped.points) {
    EXPECT_LE(p.x, 8.0f + 1e-3f);
  }
}

TEST(Clip, PlaneMissingMeshKeepsEverything) {
  UniformGrid g = sphere_grid(9, {4, 4, 4});
  TriangleMesh m = isosurface(g, "dist", 2.0f);
  TriangleMesh clipped = clip_by_plane(m, {100, 0, 0}, {1, 0, 0});
  EXPECT_EQ(clipped.triangle_count(), m.triangle_count());
  TriangleMesh gone = clip_by_plane(m, {-100, 0, 0}, {1, 0, 0});
  EXPECT_EQ(gone.triangle_count(), 0u);
}

TEST(Clip, AreaApproximatelyHalved) {
  UniformGrid g = sphere_grid(21, {10, 10, 10});
  TriangleMesh m = isosurface(g, "dist", 6.0f);
  auto area = [](const TriangleMesh& mesh) {
    double a = 0;
    for (std::size_t t = 0; t < mesh.triangle_count(); ++t) {
      const Vec3 p0 = mesh.points[mesh.triangles[3 * t]];
      const Vec3 p1 = mesh.points[mesh.triangles[3 * t + 1]];
      const Vec3 p2 = mesh.points[mesh.triangles[3 * t + 2]];
      a += 0.5 * static_cast<double>((p1 - p0).cross(p2 - p0).norm());
    }
    return a;
  };
  TriangleMesh clipped = clip_by_plane(m, {10, 10, 10}, {0, 0, 1});
  EXPECT_NEAR(area(clipped), area(m) / 2, area(m) * 0.05);
}

// ------------------------------------------------------------- threshold

TEST(Threshold, SelectsCellsInRange) {
  UnstructuredGrid g;
  g.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}};
  const std::uint32_t t1[] = {0, 1, 2, 3};
  const std::uint32_t t2[] = {1, 2, 3, 4};
  const std::uint32_t t3[] = {0, 2, 3, 4};
  g.add_cell(CellType::tetra, t1);
  g.add_cell(CellType::tetra, t2);
  g.add_cell(CellType::tetra, t3);
  g.cell_data.add(
      DataArray::make<float>("mass", std::vector<float>{1.0f, 5.0f, 9.0f}));
  UnstructuredGrid out = threshold(g, "mass", 2.0, 8.0);
  ASSERT_EQ(out.cell_count(), 1u);
  EXPECT_EQ(out.cell(0)[0], 1u);
  EXPECT_EQ(out.cell_data.find("mass")->as<float>()[0], 5.0f);
}

// ---------------------------------------------------------------- merge

TEST(Merge, MeshesConcatenateWithIndexFixup) {
  TriangleMesh a, b;
  a.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  a.triangles = {0, 1, 2};
  a.scalars = {1, 1, 1};
  a.normals = {{0, 0, 1}, {0, 0, 1}, {0, 0, 1}};
  b.points = {{5, 0, 0}, {6, 0, 0}, {5, 1, 0}};
  b.triangles = {0, 1, 2};
  b.scalars = {2, 2, 2};
  b.normals = {{0, 0, 1}, {0, 0, 1}, {0, 0, 1}};
  const TriangleMesh meshes[] = {a, b};
  TriangleMesh m = merge_meshes(meshes);
  ASSERT_EQ(m.triangle_count(), 2u);
  EXPECT_EQ(m.triangles[3], 3u);
  EXPECT_EQ(m.points[4], (Vec3{6, 0, 0}));
  EXPECT_EQ(m.scalars[5], 2.0f);
}

TEST(Merge, GridsConcatenateCellsAndFields) {
  UnstructuredGrid a, b;
  a.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const std::uint32_t t[] = {0, 1, 2, 3};
  a.add_cell(CellType::tetra, t);
  a.cell_data.add(DataArray::make<float>("v", std::vector<float>{1.0f}));
  b.points = {{9, 0, 0}, {10, 0, 0}, {9, 1, 0}, {9, 0, 1}};
  b.add_cell(CellType::tetra, t);
  b.cell_data.add(DataArray::make<float>("v", std::vector<float>{2.0f}));
  const UnstructuredGrid grids[] = {a, b};
  UnstructuredGrid m = merge_grids(grids);
  ASSERT_EQ(m.cell_count(), 2u);
  EXPECT_EQ(m.points.size(), 8u);
  EXPECT_EQ(m.cell(1)[0], 4u);  // shifted by first block's point count
  const auto v = m.cell_data.find("v")->as<float>();
  EXPECT_EQ(v[0], 1.0f);
  EXPECT_EQ(v[1], 2.0f);
}

// -------------------------------------------------------------- resample

TEST(Resample, SplatsCellValuesOntoGrid) {
  UnstructuredGrid g;
  g.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const std::uint32_t t[] = {0, 1, 2, 3};
  g.add_cell(CellType::tetra, t);
  g.cell_data.add(DataArray::make<float>("v", std::vector<float>{8.0f}));
  Aabb bounds;
  bounds.extend({0, 0, 0});
  bounds.extend({1, 1, 1});
  UniformGrid img = resample_to_grid(g, "v", {4, 4, 4}, bounds);
  const auto vals = img.point_data.find("v")->as<float>();
  float sum = std::accumulate(vals.begin(), vals.end(), 0.0f);
  EXPECT_EQ(sum, 8.0f);  // single splat, value preserved
  EXPECT_EQ(img.point_count(), 64u);
}



// ------------------------------------------------------------------ slice

TEST(Slice, CrossSectionLiesOnPlane) {
  UniformGrid g = sphere_grid(13, {6, 6, 6});
  TriangleMesh m = slice(g, "dist", {6, 6, 6}, {0, 0, 1});
  ASSERT_GT(m.triangle_count(), 50u);
  for (const Vec3& p : m.points) EXPECT_NEAR(p.z, 6.0f, 1e-3f);
}

TEST(Slice, ScalarsInterpolateTheField) {
  UniformGrid g = sphere_grid(13, {6, 6, 6});
  TriangleMesh m = slice(g, "dist", {6, 6, 6}, {0, 0, 1});
  ASSERT_EQ(m.scalars.size(), m.points.size());
  // On the z=6 plane through the center, dist == distance in the plane.
  for (std::size_t i = 0; i < m.points.size(); ++i) {
    const float expect = (m.points[i] - Vec3{6, 6, 6}).norm();
    EXPECT_NEAR(m.scalars[i], expect, 0.3f) << i;
  }
}

TEST(Slice, PlaneOutsideGridIsEmpty) {
  UniformGrid g = sphere_grid(9, {4, 4, 4});
  EXPECT_EQ(slice(g, "dist", {100, 0, 0}, {1, 0, 0}).triangle_count(), 0u);
}

TEST(Slice, MissingFieldThrows) {
  UniformGrid g = sphere_grid(5, {2, 2, 2});
  EXPECT_THROW(slice(g, "nope", {2, 2, 2}, {1, 0, 0}), std::runtime_error);
}

// -------------------------------------------------------------- vtk writer

TEST(VtkWriter, UniformGridFile) {
  UniformGrid g = sphere_grid(4, {2, 2, 2});
  const std::string path = "/tmp/colza_vtk_ug.vtk";
  ASSERT_TRUE(write_legacy_vtk(path, g).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[128];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line), "# vtk DataFile Version 3.0\n");
  std::string all;
  while (std::fgets(line, sizeof(line), f) != nullptr) all += line;
  std::fclose(f);
  EXPECT_NE(all.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(all.find("DIMENSIONS 4 4 4"), std::string::npos);
  EXPECT_NE(all.find("SCALARS dist float 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VtkWriter, UnstructuredGridFile) {
  UnstructuredGrid g;
  g.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const std::uint32_t tet[] = {0, 1, 2, 3};
  g.add_cell(CellType::tetra, tet);
  g.cell_data.add(DataArray::make<float>("v", std::vector<float>{2.5f}));
  const std::string path = "/tmp/colza_vtk_unstructured.vtk";
  ASSERT_TRUE(write_legacy_vtk(path, g).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string all;
  char line[128];
  while (std::fgets(line, sizeof(line), f) != nullptr) all += line;
  std::fclose(f);
  EXPECT_NE(all.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(all.find("CELLS 1 5"), std::string::npos);
  EXPECT_NE(all.find("CELL_TYPES 1"), std::string::npos);
  EXPECT_NE(all.find("CELL_DATA 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VtkWriter, TriangleMeshFile) {
  UniformGrid g = sphere_grid(9, {4, 4, 4});
  TriangleMesh m = isosurface(g, "dist", 2.5f);
  const std::string path = "/tmp/colza_vtk_mesh.vtk";
  ASSERT_TRUE(write_legacy_vtk(path, m).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string all;
  char line[128];
  while (std::fgets(line, sizeof(line), f) != nullptr) all += line;
  std::fclose(f);
  EXPECT_NE(all.find("DATASET POLYDATA"), std::string::npos);
  EXPECT_NE(all.find("POLYGONS"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VtkWriter, UnwritablePathFails) {
  UniformGrid g = sphere_grid(3, {1, 1, 1});
  EXPECT_FALSE(write_legacy_vtk("/no/such/dir/x.vtk", g).ok());
}

}  // namespace
}  // namespace colza::vis

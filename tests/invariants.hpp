// Invariant-checking harness for the chaos sweeps (tests/chaos_test.cpp).
//
// run_elastic_mandelbulb() drives the full Colza stack -- SSG gossip, MoNA
// collectives, the 2PC activate, RDMA staging, catalyst rendering, elastic
// joins and run_resilient_iteration -- under a chaos::ChaosPlan, and returns
// everything the four paper-level safety properties need:
//
//   INV1 (bounded progress): the client driver finishes every iteration
//        before the virtual-time deadline -- no hang survives in the DES.
//   INV2 (2PC atomicity): every iteration the client saw commit was
//        executed by a complete frozen group (n servers recorded it with
//        comm size n), and once all iterations are done no server is left
//        with an active iteration.
//   INV3 (SWIM convergence): after faults stop and partitions heal, any two
//        live servers have either identical views or fully disjoint ones
//        (a node evicted while isolated ends up a singleton), and no live
//        view contains a dead process.
//   INV4 (render determinism): every image hash recorded for an iteration
//        equals the fault-free run's hash for that iteration -- recovery and
//        duplicate staging must not change a single pixel.
//
// Determinism: the scenario runs with SimConfig::fixed_scoped_charge set, so
// even the wall-clock-coupled charge sites (catalyst render, dataset
// serialization) charge fixed virtual costs; the whole timeline, and hence
// the chaos engine's injection log, is bit-identical run to run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/mandelbulb.hpp"
#include "chaos/chaos.hpp"
#include "colza/catalyst_backend.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "colza/fault.hpp"
#include "colza/server.hpp"
#include "colza/supervisor.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vis/data.hpp"

namespace colza::testing {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  int servers = 3;
  std::uint64_t iterations = 4;
  std::uint32_t blocks = 6;  // Mandelbulb blocks staged per iteration
  bool elastic_join = false;          // add one server mid-run
  // When joining, go through the job scheduler (sched::Scheduler::grow) so
  // the sweep also exercises the resize path of paper S IV-A.
  bool use_scheduler = false;
  des::Time join_at = des::seconds(30);
  des::Duration compute_between = des::seconds(5);
  chaos::ChaosPlan plan;              // no rules = fault-free reference
  // Virtual-time deadline for INV1. Generous on purpose: a dropped execute
  // request costs a 600 s (virtual) RPC timeout per retry, and virtual
  // hours are cheap in a DES.
  des::Time deadline = des::seconds(7200);
  // Staging replication factor (1 = primaries only, the pre-replication
  // behaviour; 2 = every block also lives on a rendezvous-hashed buddy).
  std::size_t replication = 2;
  // Run a Supervisor over the staging area: crashed daemons are respawned
  // (with pipelines reinstalled) instead of bleeding capacity.
  bool supervisor = false;
  SupervisorConfig supervisor_cfg;
  // Per-iteration resilient-loop options (stats pointer is overwritten to
  // collect into ScenarioResult::resilient).
  ResilientOptions resilient;
  // Flow control (docs/flow.md): the servers' staging budget (0 keeps flow
  // disabled) and whether the client handle stages flow-controlled.
  flow::FlowConfig flow;
  bool client_flow = false;
  // Record a virtual-time trace (src/obs) for the whole scenario and store
  // its FNV hash in ScenarioResult::trace_hash. Also resets the global
  // metrics registry at scenario start so counters are per-scenario.
  bool trace = false;
  // Bound on the chaos engine's in-memory injection log (0 = unbounded).
  // ScenarioResult::chaos_summary still covers every record either way.
  std::size_t chaos_log_capacity = 0;
  // Server-side integrity scrubber cadence (0 disables); the default matches
  // ServerConfig::scrub_interval.
  des::Duration scrub_interval = des::seconds(2);
  // Local viewer sessions connected to every server's viewer tier (spread
  // over `viewer_cameras` camera presets, cycling the quality classes).
  // 0 keeps the tier inert -- the neutrality check compares a viewer-heavy
  // run's timeline against an inert one.
  std::size_t viewer_sessions = 0;
  std::uint32_t viewer_cameras = 4;
};

struct IterationOutcome {
  std::uint64_t iteration = 0;
  StatusCode code = StatusCode::ok;
  std::vector<net::ProcId> view;  // the frozen view (successful runs only)
  des::Time started = 0;          // virtual time entering the resilient loop
  des::Time finished = 0;         // virtual time leaving it
};

struct ServerSummary {
  net::ProcId id = 0;
  bool alive = false;
  int active_iterations = 0;
  std::vector<net::ProcId> view;  // SSG view (alive servers only)
  std::vector<CatalystBackend::Record> records;
  // Flow-control evidence (zero when flow is disabled): the high-water mark
  // of staged bytes must never exceed the budget, and sheds_total counts the
  // Busy fast-fails the clients had to absorb.
  std::uint64_t peak_staged_bytes = 0;
  std::uint64_t flow_sheds = 0;
  // Integrity machinery counters (verifies/mismatches/repairs/...), all zero
  // when no corruption was injected and the scrubber found nothing to fix.
  IntegrityStats integrity;
};

struct ScenarioResult {
  bool client_done = false;
  des::Time end_time = 0;
  std::vector<IterationOutcome> iterations;
  std::vector<ServerSummary> servers;
  std::vector<chaos::InjectionRecord> injections;
  std::string chaos_log;
  chaos::LogSummary chaos_summary;  // covers evicted records too
  ResilientStats resilient;      // summed over all iterations
  SupervisorStats supervisor;    // zero when cfg.supervisor is false
  std::uint64_t trace_hash = 0;  // timeline hash when cfg.trace is set
  std::uint64_t events_processed = 0;  // DES events over the whole scenario
  // Viewer-tier totals summed over the servers alive at the end (all zero
  // when cfg.viewer_sessions == 0 and nothing subscribed).
  std::uint64_t viewer_renders = 0;
  std::uint64_t viewer_frames = 0;
  std::uint64_t viewer_skips = 0;
};

inline ScenarioResult run_elastic_mandelbulb(const ScenarioConfig& cfg) {
  ScenarioResult res;
  des::Simulation sim(des::SimConfig{
      .seed = cfg.seed, .fixed_scoped_charge = des::milliseconds(2)});
  if (cfg.trace) {
    obs::MetricsRegistry::global().reset();
    obs::Tracer::global().enable(sim);
  }
  net::Network net(sim);
  chaos::ChaosEngine engine(cfg.plan);
  engine.set_log_capacity(cfg.chaos_log_capacity);
  engine.attach(net);

  ServerConfig scfg;
  scfg.init_cost = des::milliseconds(10);
  scfg.flow = cfg.flow;
  scfg.scrub_interval = cfg.scrub_interval;
  // Viewer quality classes: two healthy tiers plus a pathologically starved
  // one (1 B/s, 100-byte bucket), so every third session exercises the
  // skip-to-latest backpressure path while the simulation timeline -- the
  // neutrality invariant -- must not move.
  scfg.viewer.classes = {
      {"gold", 4, 400ull << 20, 4ull << 20},
      {"silver", 2, 100ull << 20, 1ull << 20},
      {"dialup", 1, 1, 100},
  };
  LaunchModel instant{des::milliseconds(10), 0.0, des::milliseconds(10)};
  StagingArea area(net, scfg, instant, cfg.seed);
  area.launch_initial(cfg.servers, /*base_node=*/100);
  sim.run_until(des::seconds(2));

  const std::string pipeline_json =
      R"({"preset":"mandelbulb","width":32,"height":32})";
  for (const auto& s : area.servers()) {
    s->create_pipeline("render", "catalyst", pipeline_json).check();
  }
  if (cfg.viewer_sessions > 0) {
    // Observer fan-out: local accounting-only sessions (remote=kInvalidProc),
    // so the fabric carries no viewer traffic and the neutrality comparison
    // isolates the tier's own fibers.
    for (const auto& s : area.servers()) {
      viewer::ViewerTier& tier = s->viewer();
      for (std::size_t i = 0; i < cfg.viewer_sessions; ++i) {
        const std::uint64_t id =
            tier.connect(static_cast<std::uint32_t>(i % 3));
        tier.subscribe(id, "render",
                       static_cast<std::uint32_t>(
                           i % std::max<std::uint32_t>(1, cfg.viewer_cameras)))
            .check();
      }
    }
  }
  std::unique_ptr<Supervisor> supervisor;
  if (cfg.supervisor) {
    supervisor = std::make_unique<Supervisor>(sim, area, cfg.supervisor_cfg);
    supervisor->on_respawn([&pipeline_json](Server& s) {
      s.create_pipeline("render", "catalyst", pipeline_json).check();
    });
    supervisor->start();
  }
  std::unique_ptr<sched::Scheduler> scheduler;
  if (cfg.elastic_join && cfg.use_scheduler) {
    scheduler = std::make_unique<sched::Scheduler>(
        sim, sched::SchedulerConfig{.total_nodes = 16});
    auto job = scheduler->submit(static_cast<std::uint32_t>(cfg.servers));
    if (job.has_value()) area.attach_scheduler(*scheduler, *job);
  }
  if (cfg.elastic_join) {
    sim.schedule_at(cfg.join_at, [&area, &pipeline_json, use_sched =
                                      cfg.use_scheduler] {
      auto install = [&pipeline_json](Server& s) {
        s.create_pipeline("render", "catalyst", pipeline_json).check();
      };
      if (use_sched) {
        (void)area.launch_one_scheduled(install);
      } else {
        area.launch_one(/*node=*/200, install);
      }
    });
  }

  // The simulation data: every iteration stages the same Mandelbulb blocks,
  // so the fault-free image hash is a per-iteration constant the chaos runs
  // can be compared against.
  apps::MandelbulbParams mb;
  mb.nx = mb.ny = mb.nz = 10;
  mb.total_blocks = cfg.blocks;
  std::vector<IterationBlock> blocks;
  for (std::uint32_t b = 0; b < cfg.blocks; ++b) {
    blocks.emplace_back(
        b, vis::serialize_dataset(vis::DataSet{apps::mandelbulb_block(mb, b)}));
  }

  auto& client_proc = net.create_process(0);
  Client client(client_proc);
  client_proc.spawn("chaos-app", [&] {
    auto h = DistributedPipelineHandle::lookup(
        client, area.bootstrap().contacts(), "render");
    if (!h.has_value()) return;  // client_done stays false -> INV1 fails
    h->set_replication(cfg.replication);
    if (cfg.client_flow) h->set_flow_control(FlowClientOptions{.enabled = true});
    ResilientOptions opts = cfg.resilient;
    opts.stats = &res.resilient;
    for (std::uint64_t it = 1; it <= cfg.iterations; ++it) {
      IterationOutcome out;
      out.started = sim.now();
      Status s = run_resilient_iteration(*h, it, blocks, opts);
      out.finished = sim.now();
      out.iteration = it;
      out.code = s.code();
      if (s.ok()) out.view = h->view();
      res.iterations.push_back(std::move(out));
      sim.sleep_for(cfg.compute_between);
    }
    res.client_done = true;
  });

  // Drive in bounded steps so a finished run stops early; then give the
  // membership protocol a settle window past the last scheduled fault so
  // INV3 checks converged views, not views mid-suspicion.
  const des::Duration step = des::seconds(30);
  while (!res.client_done && sim.now() < cfg.deadline) {
    sim.run_until(std::min<des::Time>(sim.now() + step, cfg.deadline));
  }
  des::Time settle = sim.now() + des::seconds(30);
  for (const chaos::Rule& r : cfg.plan.rules) {
    if (r.kind == chaos::RuleKind::partition) {
      settle = std::max<des::Time>(
          settle, std::max(r.at, r.heal_at) + des::seconds(30));
    }
    if (r.kind == chaos::RuleKind::crash) {
      settle = std::max<des::Time>(settle, r.at + des::seconds(30));
    }
    if (r.kind == chaos::RuleKind::shed) {
      settle = std::max<des::Time>(
          settle, std::max(r.at, r.heal_at) + des::seconds(30));
    }
    if (r.kind == chaos::RuleKind::corrupt && r.at != 0) {
      // Past the rot *and* at least one scrub pass, so the scrubber's
      // repairs land before the summaries are collected.
      settle = std::max<des::Time>(
          settle, std::max(r.at, r.heal_at) + des::seconds(30));
    }
  }
  sim.run_until(settle);

  res.end_time = sim.now();
  res.events_processed = sim.events_processed();
  if (supervisor != nullptr) {
    res.supervisor = supervisor->stats();
    supervisor->stop();
  }
  res.injections = engine.log();
  res.chaos_log = engine.dump_log();
  res.chaos_summary = engine.log_summary();
  for (const auto& s : area.servers()) {
    ServerSummary sum;
    sum.id = s->address();
    sum.alive = s->alive();
    sum.active_iterations = s->active_iterations();
    if (s->alive()) sum.view = s->group().view();
    if (auto* b = dynamic_cast<CatalystBackend*>(s->pipeline("render"))) {
      sum.records = b->records();
    }
    sum.peak_staged_bytes = s->flow().peak_staged_bytes();
    sum.flow_sheds = s->flow().sheds_total();
    sum.integrity = s->integrity();
    if (s->alive()) {
      res.viewer_renders += s->viewer().renders_total();
      res.viewer_frames += s->viewer().frames_delivered();
      res.viewer_skips += s->viewer().skips_total();
    }
    res.servers.push_back(std::move(sum));
  }
  if (cfg.trace) {
    obs::Tracer::global().disable();
    res.trace_hash = obs::Tracer::global().timeline_hash();
  }
  engine.detach();
  return res;
}

// ---------------------------------------------------------------------------
// The four invariants. Each returns an empty string on success or a
// human-readable violation (so the sweep can report seed + violation).

// INV1: the client driver completed before the virtual deadline.
inline std::string check_bounded_progress(const ScenarioResult& r,
                                          const ScenarioConfig& cfg) {
  if (!r.client_done) {
    return "INV1: client not done by t=" + std::to_string(cfg.deadline) +
           " (now=" + std::to_string(r.end_time) + ")";
  }
  return {};
}

// INV2: 2PC atomicity, checked through the execution records themselves:
// for every iteration the client saw commit, some activation attempt
// executed on its *complete* frozen group -- the records sharing that
// attempt's communicator context come from exactly comm_size distinct
// servers. A partial group would mean an iteration "succeeded" without its
// full frozen membership executing. The client-side view after
// run_resilient_iteration is deliberately not used here: its cleanup path
// refreshes the view, so it need not equal the frozen one. When every
// iteration succeeded, additionally no server may be left frozen (a
// committed-but-never-deactivated iteration would block leaves forever).
inline std::string check_two_phase_atomicity(const ScenarioResult& r) {
  bool all_ok = !r.iterations.empty();
  for (const auto& it : r.iterations) {
    if (it.code != StatusCode::ok) {
      all_ok = false;
      continue;
    }
    // Communicator context -> (comm size, distinct servers that executed
    // the iteration on it). Each 2PC commit runs on a fresh epoch context,
    // so a context identifies one activation attempt over one frozen group.
    std::map<std::uint64_t, std::pair<int, std::set<net::ProcId>>> groups;
    for (const auto& s : r.servers) {
      for (const auto& rec : s.records) {
        if (rec.iteration != it.iteration) continue;
        auto& g = groups[rec.comm_context];
        g.first = rec.comm_size;
        g.second.insert(s.id);
      }
    }
    const bool complete =
        std::any_of(groups.begin(), groups.end(), [](const auto& g) {
          return static_cast<int>(g.second.second.size()) == g.second.first;
        });
    if (!complete) {
      return "INV2: iteration " + std::to_string(it.iteration) +
             " committed but no complete server group executed it";
    }
  }
  if (all_ok) {
    for (const auto& s : r.servers) {
      if (s.alive && s.active_iterations != 0) {
        return "INV2: server " + std::to_string(s.id) + " left with " +
               std::to_string(s.active_iterations) + " active iterations";
      }
    }
  }
  return {};
}

// INV3: SWIM convergence after faults settle. Live servers agree: any two
// views are identical or fully disjoint (an isolated-then-evicted node ends
// up a singleton the group has excised), and no live view contains a process
// that is dead.
inline std::string check_swim_convergence(const ScenarioResult& r) {
  std::map<net::ProcId, bool> alive;
  for (const auto& s : r.servers) alive.emplace(s.id, s.alive);

  std::vector<const ServerSummary*> live;
  for (const auto& s : r.servers) {
    if (s.alive) live.push_back(&s);
  }
  for (const auto* s : live) {
    for (net::ProcId member : s->view) {
      auto it = alive.find(member);
      if (it != alive.end() && !it->second) {
        return "INV3: server " + std::to_string(s->id) +
               " still lists dead server " + std::to_string(member) +
               " in its view";
      }
    }
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (std::size_t j = i + 1; j < live.size(); ++j) {
      const auto& a = live[i]->view;
      const auto& b = live[j]->view;
      if (a == b) continue;  // views are sorted
      std::vector<net::ProcId> inter;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(inter));
      if (!inter.empty()) {
        return "INV3: servers " + std::to_string(live[i]->id) + " and " +
               std::to_string(live[j]->id) +
               " have overlapping but different views";
      }
    }
  }
  return {};
}

// INV4: render determinism. Every image hash any server recorded for an
// iteration matches the fault-free reference hash for that iteration
// (rank != 0 records carry hash 0 and are skipped).
inline std::string check_render_hashes(
    const ScenarioResult& r,
    const std::map<std::uint64_t, std::uint64_t>& reference) {
  for (const auto& s : r.servers) {
    for (const auto& rec : s.records) {
      if (rec.image_hash == 0) continue;  // not the compositing root
      auto it = reference.find(rec.iteration);
      if (it == reference.end()) {
        return "INV4: iteration " + std::to_string(rec.iteration) +
               " rendered but has no fault-free reference";
      }
      if (rec.image_hash != it->second) {
        return "INV4: iteration " + std::to_string(rec.iteration) +
               " hash mismatch on server " + std::to_string(s.id);
      }
    }
  }
  return {};
}

// Fault-free reference hashes, keyed by iteration.
inline std::map<std::uint64_t, std::uint64_t> reference_hashes(
    const ScenarioResult& r) {
  std::map<std::uint64_t, std::uint64_t> out;
  for (const auto& s : r.servers) {
    for (const auto& rec : s.records) {
      if (rec.image_hash != 0) out.emplace(rec.iteration, rec.image_hash);
    }
  }
  return out;
}

}  // namespace colza::testing

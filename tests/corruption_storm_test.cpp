// The corruption storm (ctest label tier2): one silent storage corruption
// per iteration cadence for 30 Mandelbulb iterations. Staged windows last
// milliseconds, so the scheduled rules nearly always fire into idle servers
// and defer (rot on write) to the next payload the victim stores. With
// replication 2 the run must show
//   * zero client-visible iteration failures,
//   * every corruption that was read gets detected and repaired from a buddy
//     copy (no full or targeted client re-stages), and
//   * every rendered image hashes identically to the fault-free reference --
//     repair must not change a pixel.
// The storm also pins the degraded R=1 behaviour (detection still works; the
// client heals by full re-stage), the in-transit retransmit path, and the
// bit-identical injection/repair timeline the replay workflow relies on.
#include <gtest/gtest.h>

#include <cstdint>

#include "chaos/chaos.hpp"
#include "invariants.hpp"
#include "obs/metrics.hpp"

namespace colza::testing {
namespace {

using des::seconds;

constexpr std::uint64_t kStormSeed = 31;

// One corruption per iteration: period matches the iteration cadence
// (compute_between dominates) and the victims are seeded picks over all four
// server processes (ids 1..4).
ScenarioConfig storm_scenario(std::uint64_t iterations) {
  ScenarioConfig cfg;
  cfg.seed = kStormSeed;
  cfg.servers = 4;
  cfg.iterations = iterations;
  cfg.replication = 2;
  cfg.compute_between = seconds(40);
  cfg.resilient.attempt_timeout = seconds(20);
  cfg.deadline = seconds(20000);
  cfg.plan = chaos::corruption_storm_plan(/*base_server=*/1, /*servers=*/4,
                                          /*start=*/seconds(10),
                                          /*period=*/seconds(45),
                                          /*corruptions=*/iterations,
                                          kStormSeed);
  return cfg;
}

std::uint64_t sum_mismatches(const ScenarioResult& r) {
  std::uint64_t n = 0;
  for (const auto& s : r.servers) n += s.integrity.mismatches;
  return n;
}

std::uint64_t sum_repairs(const ScenarioResult& r) {
  std::uint64_t n = 0;
  for (const auto& s : r.servers) n += s.integrity.repairs;
  return n;
}

TEST(CorruptionStorm, ThirtyIterationsZeroFailuresAllRepairsServerSide) {
  const ScenarioConfig cfg = storm_scenario(30);
  const ScenarioResult res = run_elastic_mandelbulb(cfg);

  ASSERT_TRUE(res.client_done);
  for (const auto& it : res.iterations) {
    EXPECT_EQ(it.code, StatusCode::ok) << "iteration " << it.iteration;
  }
  // With a buddy copy for every block, corruption never reaches the client:
  // no recovery attempts, no re-stages of any kind.
  EXPECT_EQ(res.resilient.full_restages, 0);
  EXPECT_EQ(res.resilient.targeted_restages, 0);
  EXPECT_EQ(res.resilient.partial_recoveries, 0);

  // All 30 scheduled corruptions fired (deferred or direct), none gave up:
  // delta == 1 marks a rule whose heal window closed without a victim.
  int corrupts = 0;
  for (const auto& rec : res.injections) {
    if (rec.kind != chaos::RuleKind::corrupt) continue;
    ++corrupts;
    EXPECT_NE(rec.src, 0u);
    EXPECT_EQ(rec.delta, 0) << rec.to_string();
  }
  EXPECT_EQ(corrupts, 30);
  EXPECT_EQ(res.chaos_summary.records,
            static_cast<std::uint64_t>(res.injections.size()));

  // Rot that landed on primaries was caught by the execute-time verify and
  // repaired from buddies. (Rot on a buddy replica whose iteration ends
  // before any scrub pass is discarded unread -- that is why mismatches
  // need not equal 30.)
  EXPECT_GT(sum_mismatches(res), 0u);
  EXPECT_GT(sum_repairs(res), 0u);

  EXPECT_EQ(check_two_phase_atomicity(res), "");
  EXPECT_EQ(check_swim_convergence(res), "");

  // Repair must not change a pixel: every rendered hash matches the
  // fault-free reference of the same scenario shape.
  ScenarioConfig ref_cfg = cfg;
  ref_cfg.plan = chaos::ChaosPlan{};
  const ScenarioResult ref = run_elastic_mandelbulb(ref_cfg);
  ASSERT_TRUE(ref.client_done);
  EXPECT_EQ(check_render_hashes(res, reference_hashes(ref)), "");
  EXPECT_EQ(sum_mismatches(ref), 0u);  // the reference saw no corruption
}

// Unreplicated staging: detection still works (the checksum does not need a
// buddy), but repair has no intact copy to pull, so the client heals each
// hit iteration with a full scratch re-stage -- still zero visible failures.
TEST(CorruptionStorm, UnreplicatedStormHealsByFullRestage) {
  ScenarioConfig cfg = storm_scenario(6);
  cfg.replication = 1;
  cfg.plan = chaos::corruption_storm_plan(/*base_server=*/1, /*servers=*/4,
                                          /*start=*/seconds(10),
                                          /*period=*/seconds(45),
                                          /*corruptions=*/5, kStormSeed);
  const ScenarioResult res = run_elastic_mandelbulb(cfg);

  ASSERT_TRUE(res.client_done);
  for (const auto& it : res.iterations) {
    EXPECT_EQ(it.code, StatusCode::ok) << "iteration " << it.iteration;
  }
  EXPECT_GT(sum_mismatches(res), 0u);
  EXPECT_EQ(sum_repairs(res), 0u);  // nowhere to repair from
  EXPECT_GT(res.resilient.full_restages, 0);
  EXPECT_EQ(res.resilient.partial_recoveries, 0);  // R=1: scratch path only

  std::uint64_t fallbacks = 0;
  for (const auto& s : res.servers) fallbacks += s.integrity.restage_fallbacks;
  EXPECT_GT(fallbacks, 0u);

  ScenarioConfig ref_cfg = cfg;
  ref_cfg.plan = chaos::ChaosPlan{};
  const ScenarioResult ref = run_elastic_mandelbulb(ref_cfg);
  ASSERT_TRUE(ref.client_done);
  EXPECT_EQ(check_render_hashes(res, reference_hashes(ref)), "");
}

// Wire corruption: every RDMA stage pull inside the fault window has one
// byte XORed in flight. The server-side pull verify catches it before any
// bytes are stored, the client retransmits from its pristine copy, and once
// the window closes the run completes untouched.
TEST(CorruptionStorm, InTransitCorruptionIsRetransmittedEndToEnd) {
  ScenarioConfig cfg;
  cfg.seed = kStormSeed;
  cfg.servers = 3;
  cfg.iterations = 2;
  cfg.replication = 2;
  cfg.trace = true;  // resets the metrics registry at scenario start
  chaos::Rule wire;
  wire.kind = chaos::RuleKind::corrupt;
  wire.box = "rdma";
  wire.probability = 1.0;
  wire.after = seconds(2);
  wire.before = seconds(4);
  cfg.plan.seed = kStormSeed;
  cfg.plan.rules.push_back(wire);
  const ScenarioResult res = run_elastic_mandelbulb(cfg);

  ASSERT_TRUE(res.client_done);
  for (const auto& it : res.iterations) {
    EXPECT_EQ(it.code, StatusCode::ok) << "iteration " << it.iteration;
  }
  // The flipped pulls were detected (in-transit mismatches) and every
  // injection record carries the XOR byte for replay.
  EXPECT_GT(sum_mismatches(res), 0u);
  EXPECT_EQ(sum_repairs(res), 0u);  // nothing bad was ever stored
  int flips = 0;
  for (const auto& rec : res.injections) {
    if (rec.kind != chaos::RuleKind::corrupt) continue;
    ++flips;
    EXPECT_NE(rec.delta, 0);  // the XOR byte
  }
  EXPECT_GT(flips, 0);
  EXPECT_GT(obs::MetricsRegistry::global().counter_value(
                "integrity.client.retransmit"),
            0u);

  ScenarioConfig ref_cfg = cfg;
  ref_cfg.plan = chaos::ChaosPlan{};
  ref_cfg.trace = false;
  const ScenarioResult ref = run_elastic_mandelbulb(ref_cfg);
  ASSERT_TRUE(ref.client_done);
  EXPECT_EQ(check_render_hashes(res, reference_hashes(ref)), "");
}

// A bounded injection log drops old records but the running summary still
// covers every injection: same storm, capped at 4 retained records, must
// replay to the identical digest as the unbounded run.
TEST(CorruptionStorm, BoundedLogKeepsTheFullReplaySignature) {
  ScenarioConfig cfg = storm_scenario(8);
  const ScenarioResult full = run_elastic_mandelbulb(cfg);
  cfg.chaos_log_capacity = 4;
  const ScenarioResult capped = run_elastic_mandelbulb(cfg);

  ASSERT_TRUE(full.client_done);
  ASSERT_TRUE(capped.client_done);
  EXPECT_GT(full.injections.size(), 4u);
  EXPECT_LE(capped.injections.size(), 4u);
  EXPECT_TRUE(full.chaos_summary == capped.chaos_summary);
  EXPECT_EQ(capped.chaos_summary.records,
            static_cast<std::uint64_t>(full.injections.size()));
  EXPECT_EQ(full.end_time, capped.end_time);
}

// Same seed => bit-identical injection *and* repair timeline: the injection
// log, the per-iteration outcomes, the integrity counters on every server,
// the end time and the rendered hashes all replay exactly.
TEST(CorruptionStorm, InjectionAndRepairTimelineIsBitIdenticalForSameSeed) {
  const ScenarioConfig cfg = storm_scenario(6);
  const ScenarioResult a = run_elastic_mandelbulb(cfg);
  const ScenarioResult b = run_elastic_mandelbulb(cfg);

  ASSERT_TRUE(a.client_done);
  EXPECT_EQ(a.chaos_log, b.chaos_log);
  EXPECT_TRUE(a.injections == b.injections);
  EXPECT_TRUE(a.chaos_summary == b.chaos_summary);
  EXPECT_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].code, b.iterations[i].code);
    EXPECT_EQ(a.iterations[i].view, b.iterations[i].view);
  }
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].integrity.verifies, b.servers[i].integrity.verifies);
    EXPECT_EQ(a.servers[i].integrity.mismatches,
              b.servers[i].integrity.mismatches);
    EXPECT_EQ(a.servers[i].integrity.repairs, b.servers[i].integrity.repairs);
  }
  EXPECT_EQ(reference_hashes(a), reference_hashes(b));
}

}  // namespace
}  // namespace colza::testing

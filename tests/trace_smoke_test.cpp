// Trace smoke (tier 1): run a small 4-rank Mandelbulb pipeline with the
// virtual-time tracer on, write the Chrome trace to disk, and check that
//
//   1. the file is valid JSON under the strict parser (which now decodes
//      \uXXXX escapes and rejects malformed ones), with the trace_event
//      fields every viewer expects;
//   2. span nesting is sane: a closed child span lies inside its closed
//      parent's interval, and every successful client-side rpc.call span
//      has a server-side rpc.handle child carrying the same trace id.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/mandelbulb.hpp"
#include "bench/colza_harness.hpp"
#include "common/json.hpp"
#include "obs/trace.hpp"

namespace colza {
namespace {

struct Span {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t parent = 0;
  std::uint64_t tid = 0;
  des::Time begin = 0;
  des::Time end = 0;
  bool closed = false;
  std::string end_args;
};

TEST(TraceSmoke, FourRankMandelbulbTraceIsValidAndWellNested) {
  const std::string trace_path = "trace_smoke_out.json";
  bench::HarnessConfig cfg;
  cfg.clients = 4;
  cfg.servers = 2;
  cfg.servers_per_node = 1;
  cfg.pipeline_json = R"({"preset":"mandelbulb","width":32,"height":32})";
  cfg.trace_path = trace_path;

  apps::MandelbulbParams mb;
  mb.nx = mb.ny = mb.nz = 8;
  mb.total_blocks = 8;

  bench::ColzaPipelineHarness harness(cfg);
  auto gen = [&](int client, std::uint64_t) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (int b = 0; b < 2; ++b) {
      const auto id = static_cast<std::uint64_t>(client * 2 + b);
      blocks.emplace_back(id, vis::DataSet{apps::mandelbulb_block(
                                  mb, static_cast<std::uint32_t>(id))});
    }
    return blocks;
  };
  const auto times = harness.run(2, gen);
  ASSERT_EQ(times.size(), 2u);

  // --- 1. The file exists and survives the strict parser.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << trace_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  ASSERT_FALSE(text.empty());

  json::Value root;
  ASSERT_NO_THROW(root = json::parse(text)) << "trace is not valid JSON";
  ASSERT_TRUE(root.is_object());
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->as_array().empty());
  for (const auto& e : events->as_array()) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.string_or("ph", "");
    ASSERT_TRUE(ph == "B" || ph == "E" || ph == "X" || ph == "i")
        << "unexpected phase " << ph;
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
    if (ph == "B" || ph == "X" || ph == "i") {
      EXPECT_FALSE(e.string_or("name", "").empty());
    }
  }

  // --- 2. Span nesting invariants, from the in-memory event list.
  std::map<std::uint64_t, Span> spans;
  for (const auto& e : obs::Tracer::global().events()) {
    if (e.phase == obs::TraceEvent::Phase::begin) {
      Span s;
      s.name = e.name;
      s.trace_id = e.trace_id;
      s.parent = e.parent_id;
      s.tid = e.tid;
      s.begin = e.ts;
      spans.emplace(e.span_id, std::move(s));
    } else if (e.phase == obs::TraceEvent::Phase::end) {
      auto it = spans.find(e.span_id);
      ASSERT_NE(it, spans.end()) << "end event for unknown span";
      it->second.end = e.ts;
      it->second.closed = true;
      it->second.end_args = e.args;
    }
  }
  ASSERT_FALSE(spans.empty());

  // Fault-free run: every span opened was also closed.
  std::size_t open = 0;
  for (const auto& [id, s] : spans) open += s.closed ? 0 : 1;
  EXPECT_EQ(open, 0u);

  // A closed child lies inside its closed parent's interval.
  for (const auto& [id, s] : spans) {
    if (s.parent == 0 || !s.closed) continue;
    auto pit = spans.find(s.parent);
    if (pit == spans.end() || !pit->second.closed) continue;
    EXPECT_GE(s.begin, pit->second.begin)
        << s.name << " starts before parent " << pit->second.name;
    EXPECT_LE(s.end, pit->second.end)
        << s.name << " ends after parent " << pit->second.name;
  }

  // Every successful rpc.call span has a server-side rpc.handle child in
  // the same trace (the context rode the request frame to the server).
  std::map<std::uint64_t, std::vector<const Span*>> children;
  for (const auto& [id, s] : spans) {
    if (s.parent != 0) children[s.parent].push_back(&s);
  }
  std::size_t ok_calls = 0;
  for (const auto& [id, s] : spans) {
    if (s.name.rfind("rpc.call:", 0) != 0 || !s.closed) continue;
    if (s.end_args.find("\"status\":0") == std::string::npos) continue;
    ++ok_calls;
    bool has_handle = false;
    for (const Span* c : children[id]) {
      if (c->name.rfind("rpc.handle:", 0) == 0 && c->trace_id == s.trace_id) {
        has_handle = true;
        break;
      }
    }
    EXPECT_TRUE(has_handle)
        << "rpc.call span " << id << " (" << s.name << ") has no handle child";
  }
  EXPECT_GT(ok_calls, 0u);

  // The harness emitted its per-phase bracket spans.
  for (const char* phase :
       {"phase.activate", "phase.stage", "phase.execute", "phase.deactivate"}) {
    std::size_t n = 0;
    for (const auto& [id, s] : spans) n += s.name == phase ? 1 : 0;
    EXPECT_EQ(n, 2u) << phase << " spans != iterations";
  }
}

}  // namespace
}  // namespace colza

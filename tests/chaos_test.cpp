// Unit tests for the chaos-injection layer (src/chaos): plan parsing, the
// per-message fault verdicts, scheduled partitions and crashes, injection
// logging, and the determinism property the invariant sweeps rely on --
// identical plans against identical scenarios produce bit-identical logs.
// The slow multi-seed sweeps live in chaos_sweep_test.cpp (ctest -L tier2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "chaos/chaos.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "net/profile.hpp"
#include "invariants.hpp"

namespace colza::chaos {
namespace {

using des::microseconds;
using des::milliseconds;
using des::seconds;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

// ---------------------------------------------------------------- plan JSON

TEST(ChaosPlan, ParsesFullRuleVocabularyFromJson) {
  const ChaosPlan plan = ChaosPlan::from_json(R"({
    "seed": 99,
    "rules": [
      {"kind": "drop", "probability": 0.25, "box": "rpc", "from": 2, "to": 3,
       "after_us": 1000, "before_us": 9000},
      {"kind": "delay", "probability": 0.5, "delay_us": 200, "jitter_us": 100},
      {"kind": "duplicate", "copies": 2, "spacing_us": 50},
      {"kind": "reorder", "jitter_us": 300},
      {"kind": "slow_node", "node": 4, "factor": 3.5},
      {"kind": "partition", "group_a": [1, 2], "group_b": [3],
       "at_us": 5000, "heal_us": 8000},
      {"kind": "crash", "target": 2, "at_us": 7000},
      {"kind": "corrupt", "target": 1, "at_us": 7500, "heal_us": 9500,
       "mode": "truncate"},
      {"kind": "corrupt", "box": "rdma"}
    ]
  })");
  ASSERT_EQ(plan.seed, 99u);
  ASSERT_EQ(plan.rules.size(), 9u);
  EXPECT_EQ(plan.rules[0].kind, RuleKind::drop);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.25);
  EXPECT_EQ(plan.rules[0].box, "rpc");
  EXPECT_EQ(plan.rules[0].from, 2u);
  EXPECT_EQ(plan.rules[0].to, 3u);
  EXPECT_EQ(plan.rules[0].after, microseconds(1000));
  EXPECT_EQ(plan.rules[0].before, microseconds(9000));
  EXPECT_EQ(plan.rules[1].delay, microseconds(200));
  EXPECT_EQ(plan.rules[1].jitter, microseconds(100));
  EXPECT_EQ(plan.rules[2].copies, 2);
  EXPECT_EQ(plan.rules[2].spacing, microseconds(50));
  EXPECT_EQ(plan.rules[3].kind, RuleKind::reorder);
  EXPECT_EQ(plan.rules[4].node, 4u);
  EXPECT_DOUBLE_EQ(plan.rules[4].factor, 3.5);
  EXPECT_EQ(plan.rules[5].group_a, (std::vector<net::ProcId>{1, 2}));
  EXPECT_EQ(plan.rules[5].group_b, (std::vector<net::ProcId>{3}));
  EXPECT_EQ(plan.rules[5].at, microseconds(5000));
  EXPECT_EQ(plan.rules[5].heal_at, microseconds(8000));
  EXPECT_EQ(plan.rules[6].target, 2u);
  EXPECT_EQ(plan.rules[7].kind, RuleKind::corrupt);
  EXPECT_EQ(plan.rules[7].target, 1u);
  EXPECT_EQ(plan.rules[7].at, microseconds(7500));
  EXPECT_EQ(plan.rules[7].corrupt_mode, common::integrity::CorruptMode::truncate);
  EXPECT_EQ(plan.rules[8].kind, RuleKind::corrupt);
  EXPECT_EQ(plan.rules[8].at, 0u);  // in-transit form
  EXPECT_EQ(plan.rules[8].corrupt_mode, common::integrity::CorruptMode::bit_flip);
}

TEST(ChaosPlan, RejectsUnknownRuleKind) {
  EXPECT_THROW(ChaosPlan::from_json(R"({"rules":[{"kind":"meteor"}]})"),
               std::runtime_error);
}

TEST(ChaosPlan, DefaultsToNoRules) {
  const ChaosPlan plan = ChaosPlan::from_json("{}");
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_TRUE(plan.rules.empty());
}

// A typoed key must not silently disable a fault: the loader is strict and
// names the offending rule so the plan author can find it.
TEST(ChaosPlan, RejectsUnknownRuleKeyNamingTheRuleIndex) {
  try {
    (void)ChaosPlan::from_json(R"({
      "rules": [
        {"kind": "drop"},
        {"kind": "delay", "delay_usec": 200}
      ]
    })");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rule 1"), std::string::npos) << what;
    EXPECT_NE(what.find("delay_usec"), std::string::npos) << what;
  }
}

TEST(ChaosPlan, RejectsUnknownTopLevelKey) {
  try {
    (void)ChaosPlan::from_json(R"({"sed": 3, "rules": []})");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sed"), std::string::npos);
  }
}

TEST(ChaosPlan, RejectsNonObjectRule) {
  try {
    (void)ChaosPlan::from_json(R"({"rules": [{"kind": "drop"}, 7]})");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rule 1"), std::string::npos);
  }
}

// The corrupt-rule validation mirrors the unknown-key strictness: a typoed
// mode or an unaimed scheduled rule names its index instead of silently
// arming nothing.
TEST(ChaosPlan, RejectsInvalidCorruptModeNamingTheRuleIndex) {
  try {
    (void)ChaosPlan::from_json(R"({
      "rules": [
        {"kind": "drop"},
        {"kind": "corrupt", "target": 1, "at_us": 100, "mode": "bitflip"}
      ]
    })");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rule 1"), std::string::npos) << what;
    EXPECT_NE(what.find("bitflip"), std::string::npos) << what;
  }
}

TEST(ChaosPlan, RejectsScheduledCorruptWithoutTargetOrNode) {
  try {
    (void)ChaosPlan::from_json(
        R"({"rules": [{"kind": "corrupt", "at_us": 100}]})");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rule 0"), std::string::npos);
  }
}

TEST(ChaosPlan, RejectsModeOnNonCorruptRule) {
  try {
    (void)ChaosPlan::from_json(
        R"({"rules": [{"kind": "drop", "mode": "zero"}]})");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mode"), std::string::npos);
  }
}

TEST(ChaosPlan, RejectsInTransitCorruptOnNonRdmaBox) {
  try {
    (void)ChaosPlan::from_json(
        R"({"rules": [{"kind": "corrupt", "box": "rpc"}]})");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rdma"), std::string::npos);
  }
}

TEST(ChaosPlan, CorruptionStormPlanIsSeededAndPeriodic) {
  const ChaosPlan plan = corruption_storm_plan(
      /*base_server=*/1, /*servers=*/4, /*start=*/seconds(5),
      /*period=*/seconds(45), /*corruptions=*/8, /*seed=*/13);
  EXPECT_EQ(plan.seed, 13u);
  ASSERT_EQ(plan.rules.size(), 8u);
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    const Rule& r = plan.rules[i];
    EXPECT_EQ(r.kind, RuleKind::corrupt);
    EXPECT_GE(r.target, 1u);
    EXPECT_LT(r.target, 5u);
    EXPECT_EQ(r.at, seconds(5) + i * seconds(45));
    EXPECT_EQ(r.heal_at, r.at + seconds(45));
  }
  // Seeded: the same arguments always produce the same victims and modes.
  const ChaosPlan again = corruption_storm_plan(1, 4, seconds(5), seconds(45),
                                                8, 13);
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    EXPECT_EQ(plan.rules[i].target, again.rules[i].target);
    EXPECT_EQ(plan.rules[i].corrupt_mode, again.rules[i].corrupt_mode);
  }
}

TEST(ChaosPlan, CrashStormPlanRoundRobinsNodeTargetedCrashes) {
  const ChaosPlan plan =
      crash_storm_plan(/*base_node=*/100, /*nodes=*/3, /*start=*/seconds(10),
                       /*period=*/seconds(5), /*crashes=*/7, /*seed=*/99);
  EXPECT_EQ(plan.seed, 99u);
  ASSERT_EQ(plan.rules.size(), 7u);
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    const Rule& r = plan.rules[i];
    EXPECT_EQ(r.kind, RuleKind::crash);
    EXPECT_EQ(r.target, 0u);  // node-targeted: kills the current occupant
    EXPECT_EQ(r.node, 100u + i % 3);
    EXPECT_EQ(r.at, seconds(10) + i * seconds(5));
  }
}

// ------------------------------------------------------------- message rules

struct ChaosNetTest : ::testing::Test {
  des::Simulation sim;
  net::Network net{sim};
  net::Profile prof = net::Profile::mona();
};

TEST_F(ChaosNetTest, DropRuleSwallowsMatchingMessages) {
  Rule r;
  r.kind = RuleKind::drop;
  r.box = "x";
  ChaosEngine engine(ChaosPlan{7, {r}});
  engine.attach(net);

  auto& a = net.create_process(0);
  auto& b = net.create_process(1);
  int got_x = 0, got_y = 0;
  b.spawn("rx", [&] {
    while (b.mailbox("x").recv(seconds(2)).has_value()) ++got_x;
  });
  b.spawn("ry", [&] {
    while (b.mailbox("y").recv(seconds(2)).has_value()) ++got_y;
  });
  a.spawn("tx", [&] {
    net.transmit(a, b.id(), "x", prof, {a.id(), 1, bytes_of("dropped")});
    net.transmit(a, b.id(), "y", prof, {a.id(), 2, bytes_of("delivered")});
  });
  sim.run();

  EXPECT_EQ(got_x, 0);  // the box filter matched and the rule swallowed it
  EXPECT_EQ(got_y, 1);  // other mailboxes are untouched
  ASSERT_EQ(engine.log().size(), 1u);
  EXPECT_EQ(engine.log()[0].kind, RuleKind::drop);
  EXPECT_EQ(engine.log()[0].src, a.id());
  EXPECT_EQ(engine.log()[0].dst, b.id());
  EXPECT_EQ(engine.log()[0].tag, 1u);
}

TEST_F(ChaosNetTest, DelayRuleShiftsArrivalByFixedAmount) {
  Rule r;
  r.kind = RuleKind::delay;
  r.delay = milliseconds(50);
  ChaosEngine engine(ChaosPlan{7, {r}});

  auto& a = net.create_process(0);
  auto& b = net.create_process(1);
  des::Time plain = 0, delayed = 0;
  b.spawn("rx", [&] {
    (void)b.mailbox("x").recv();
    plain = sim.now();
    (void)b.mailbox("x").recv();
    delayed = sim.now();
  });
  a.spawn("tx", [&] {
    net.transmit(a, b.id(), "x", prof, {a.id(), 1, std::vector<std::byte>(64)});
    sim.sleep_for(seconds(1));
    engine.attach(net);
    net.transmit(a, b.id(), "x", prof, {a.id(), 2, std::vector<std::byte>(64)});
  });
  sim.run();

  // Identical payload and quiet NICs: the chaos delta is exactly the rule's.
  EXPECT_EQ(delayed - seconds(1), plain + milliseconds(50));
  ASSERT_EQ(engine.log().size(), 1u);
  EXPECT_EQ(engine.log()[0].delta, milliseconds(50));
}

TEST_F(ChaosNetTest, DuplicateRuleDeliversExtraCopies) {
  Rule r;
  r.kind = RuleKind::duplicate;
  r.copies = 2;
  r.spacing = microseconds(100);
  ChaosEngine engine(ChaosPlan{7, {r}});
  engine.attach(net);

  auto& a = net.create_process(0);
  auto& b = net.create_process(1);
  std::vector<std::string> got;
  b.spawn("rx", [&] {
    while (auto m = b.mailbox("x").recv(seconds(2))) {
      got.emplace_back(reinterpret_cast<const char*>(m->payload.data()),
                       m->payload.size());
    }
  });
  a.spawn("tx", [&] {
    net.transmit(a, b.id(), "x", prof, {a.id(), 1, bytes_of("echo")});
  });
  sim.run();

  ASSERT_EQ(got.size(), 3u);  // original + 2 copies
  for (const auto& s : got) EXPECT_EQ(s, "echo");
}

TEST_F(ChaosNetTest, SlowNodeRuleScalesBaseDelay) {
  Rule r;
  r.kind = RuleKind::slow_node;
  r.node = 1;
  r.factor = 3.0;
  ChaosEngine engine(ChaosPlan{7, {r}});

  auto& a = net.create_process(0);
  auto& b = net.create_process(1);   // the degraded node
  auto& c = net.create_process(2);
  des::Time slow_t = 0, fast_t = 0;
  b.spawn("rb", [&] {
    (void)b.mailbox("x").recv();
    slow_t = sim.now();
  });
  c.spawn("rc", [&] {
    (void)c.mailbox("x").recv();
    fast_t = sim.now();
  });
  engine.attach(net);
  a.spawn("tx", [&] {
    net.transmit(a, b.id(), "x", prof, {a.id(), 1, bytes_of("to-slow")});
    net.transmit(a, c.id(), "x", prof, {a.id(), 2, bytes_of("to-fast")});
  });
  sim.run();

  // Same payload/profile: the degraded destination pays ~3x the base delay
  // (NIC bookkeeping makes the exact ratio fuzzy; it must be clearly >2x).
  EXPECT_GT(slow_t, fast_t * 2);
  ASSERT_EQ(engine.log().size(), 1u);
  EXPECT_EQ(engine.log()[0].kind, RuleKind::slow_node);
}

TEST_F(ChaosNetTest, RuleFiltersRespectWindowAndEndpoints) {
  Rule r;
  r.kind = RuleKind::drop;
  r.from = 1;
  r.after = seconds(10);
  r.before = seconds(20);
  ChaosEngine engine(ChaosPlan{7, {r}});
  engine.attach(net);

  auto& a = net.create_process(0);  // ProcId 1 -> matches `from`
  auto& b = net.create_process(1);
  int got = 0;
  b.spawn("rx", [&] {
    while (b.mailbox("x").recv(seconds(40)).has_value()) ++got;
  });
  a.spawn("tx", [&] {
    net.transmit(a, b.id(), "x", prof, {a.id(), 1, bytes_of("early")});
    sim.sleep_until(seconds(15));
    net.transmit(a, b.id(), "x", prof, {a.id(), 2, bytes_of("windowed")});
    sim.sleep_until(seconds(25));
    net.transmit(a, b.id(), "x", prof, {a.id(), 3, bytes_of("late")});
  });
  sim.run();

  EXPECT_EQ(got, 2);  // only the in-window message from ProcId 1 was dropped
  ASSERT_EQ(engine.log().size(), 1u);
  EXPECT_EQ(engine.log()[0].tag, 2u);
}

// ------------------------------------------------------------ scheduled rules

TEST_F(ChaosNetTest, PartitionRuleCutsBothDirectionsAndHeals) {
  Rule r;
  r.kind = RuleKind::partition;
  r.group_a = {1};
  r.group_b = {2, 3};
  r.at = seconds(5);
  r.heal_at = seconds(10);
  ChaosEngine engine(ChaosPlan{7, {r}});
  engine.attach(net);

  (void)net.create_process(0);
  (void)net.create_process(1);
  (void)net.create_process(2);
  bool cut_seen = false, healed_seen = false;
  sim.schedule_at(seconds(7), [&] {
    cut_seen = net.link_down(1, 2) && net.link_down(2, 1) &&
               net.link_down(1, 3) && net.link_down(3, 1) &&
               !net.link_down(2, 3);
  });
  sim.schedule_at(seconds(12), [&] {
    healed_seen = !net.link_down(1, 2) && !net.link_down(2, 1) &&
                  !net.link_down(1, 3) && !net.link_down(3, 1);
  });
  sim.run();

  EXPECT_TRUE(cut_seen);
  EXPECT_TRUE(healed_seen);
  ASSERT_EQ(engine.log().size(), 2u);
  EXPECT_EQ(engine.log()[0].time, seconds(5));
  EXPECT_EQ(engine.log()[0].delta, 0u);  // cut
  EXPECT_EQ(engine.log()[1].time, seconds(10));
  EXPECT_EQ(engine.log()[1].delta, 1u);  // heal
}

TEST_F(ChaosNetTest, CrashRuleKillsTargetAtScheduledTime) {
  Rule r;
  r.kind = RuleKind::crash;
  r.target = 2;
  r.at = seconds(3);
  ChaosEngine engine(ChaosPlan{7, {r}});
  engine.attach(net);

  (void)net.create_process(0);
  auto& victim = net.create_process(1);
  bool alive_before = false;
  sim.schedule_at(seconds(2), [&] { alive_before = victim.alive(); });
  sim.run();

  EXPECT_TRUE(alive_before);
  EXPECT_FALSE(victim.alive());
  ASSERT_EQ(engine.log().size(), 1u);
  EXPECT_EQ(engine.log()[0].kind, RuleKind::crash);
  EXPECT_EQ(engine.log()[0].time, seconds(3));
  EXPECT_EQ(engine.log()[0].src, 2u);
}

// A node-targeted crash (target=0) kills whatever is alive on the node when
// the rule fires -- including a process created after the first occupant
// died, which is exactly how a storm keeps hitting supervisor respawns.
TEST_F(ChaosNetTest, NodeTargetedCrashKillsCurrentOccupant) {
  Rule r1;
  r1.kind = RuleKind::crash;
  r1.node = 7;
  r1.at = seconds(2);
  Rule r2 = r1;
  r2.at = seconds(6);
  ChaosEngine engine(ChaosPlan{7, {r1, r2}});
  engine.attach(net);

  auto& first = net.create_process(7);
  net::Process* second = nullptr;
  sim.schedule_at(seconds(4), [&] { second = &net.create_process(7); });
  sim.run();

  EXPECT_FALSE(first.alive());
  ASSERT_NE(second, nullptr);
  EXPECT_FALSE(second->alive());
  ASSERT_EQ(engine.log().size(), 2u);
  EXPECT_EQ(engine.log()[0].src, first.id());   // records the actual victim
  EXPECT_EQ(engine.log()[1].src, second->id());
}

// A node-targeted crash on an empty (or all-dead) node is a no-op.
TEST_F(ChaosNetTest, NodeTargetedCrashOnEmptyNodeDoesNothing) {
  Rule r;
  r.kind = RuleKind::crash;
  r.node = 9;
  r.at = seconds(1);
  ChaosEngine engine(ChaosPlan{7, {r}});
  engine.attach(net);
  auto& bystander = net.create_process(3);
  sim.run();
  EXPECT_TRUE(bystander.alive());
  EXPECT_TRUE(engine.log().empty());
}

// ------------------------------------------------------------------- RDMA

TEST_F(ChaosNetTest, RdmaDropRuleFailsTransferAfterModeledDelay) {
  Rule r;
  r.kind = RuleKind::drop;
  r.box = "rdma";
  ChaosEngine engine(ChaosPlan{7, {r}});
  engine.attach(net);

  auto& owner = net.create_process(0);
  auto& reader = net.create_process(1);
  std::vector<std::byte> region(256);
  const net::BulkRef ref = owner.expose(region);
  StatusCode code = StatusCode::ok;
  des::Time done = 0;
  reader.spawn("pull", [&] {
    std::vector<std::byte> out(256);
    code = net.rdma_get(reader, ref, 0, out, prof).code();
    done = sim.now();
  });
  sim.run();

  EXPECT_EQ(code, StatusCode::unreachable);
  EXPECT_GT(done, 0u);  // the initiator still waited out the transfer time
  ASSERT_EQ(engine.log().size(), 1u);
  EXPECT_EQ(engine.log()[0].kind, RuleKind::drop);
}

// In-transit corruption: the pull succeeds, exactly one byte differs from
// the exposed region, and the injection record pins down which one (tag =
// offset, delta = XOR byte) so a replay rots the identical bit.
TEST_F(ChaosNetTest, RdmaCorruptRuleFlipsOneByteInFlight) {
  Rule r;
  r.kind = RuleKind::corrupt;
  r.box = "rdma";  // at == 0: the in-transit form
  ChaosEngine engine(ChaosPlan{7, {r}});
  engine.attach(net);

  auto& owner = net.create_process(0);
  auto& reader = net.create_process(1);
  std::vector<std::byte> region(256, std::byte{0x5A});
  const net::BulkRef ref = owner.expose(region);
  std::vector<std::byte> out(256);
  StatusCode code = StatusCode::internal;
  reader.spawn("pull", [&] {
    code = net.rdma_get(reader, ref, 0, out, prof).code();
  });
  sim.run();

  ASSERT_EQ(code, StatusCode::ok);  // the rot is silent by design
  std::size_t diffs = 0, diff_at = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] != region[i]) {
      ++diffs;
      diff_at = i;
    }
  }
  EXPECT_EQ(diffs, 1u);
  ASSERT_EQ(engine.log().size(), 1u);
  const InjectionRecord& rec = engine.log()[0];
  EXPECT_EQ(rec.kind, RuleKind::corrupt);
  EXPECT_EQ(rec.tag, diff_at);
  EXPECT_EQ(static_cast<std::byte>(rec.delta),
            out[diff_at] ^ region[diff_at]);
}

// ------------------------------------------------------------- log bounding

// A capacity-bounded log retains only the newest records, but the running
// summary (count + FNV digest) still covers the whole history -- two runs
// match iff their summaries match, no matter the bound.
TEST_F(ChaosNetTest, LogCapacityEvictsOldestButSummaryCoversAll) {
  auto run_once = [](std::size_t capacity) {
    des::Simulation sim;
    net::Network net(sim);
    Rule r;
    r.kind = RuleKind::drop;
    ChaosEngine engine(ChaosPlan{7, {r}});
    engine.set_log_capacity(capacity);
    engine.attach(net);
    auto& a = net.create_process(0);
    auto& b = net.create_process(1);
    a.spawn("tx", [&] {
      const net::Profile prof = net::Profile::mona();
      for (std::uint64_t i = 0; i < 20; ++i) {
        net.transmit(a, b.id(), "x", prof,
                     {a.id(), i, std::vector<std::byte>(32)});
        sim.sleep_for(milliseconds(1));
      }
    });
    sim.run();
    return std::tuple{engine.log(), engine.log_summary(), engine.dump_log()};
  };

  const auto [full_log, full_sum, full_dump] = run_once(0);
  const auto [capped_log, capped_sum, capped_dump] = run_once(5);

  ASSERT_EQ(full_log.size(), 20u);
  ASSERT_EQ(capped_log.size(), 5u);
  // The retained tail is the newest 5 records, verbatim.
  EXPECT_TRUE(std::equal(capped_log.begin(), capped_log.end(),
                         full_log.end() - 5));
  // The summary is capacity-independent: same history, same signature.
  EXPECT_EQ(full_sum.records, 20u);
  EXPECT_EQ(capped_sum, full_sum);
  // The bounded dump says what it dropped; the unbounded one does not.
  EXPECT_NE(capped_dump.find("15 older records evicted"), std::string::npos);
  EXPECT_EQ(full_dump.find("evicted"), std::string::npos);
}

TEST_F(ChaosNetTest, ShrinkingLogCapacityEvictsImmediately) {
  Rule r;
  r.kind = RuleKind::drop;
  ChaosEngine engine(ChaosPlan{7, {r}});
  engine.attach(net);
  auto& a = net.create_process(0);
  auto& b = net.create_process(1);
  a.spawn("tx", [&] {
    for (std::uint64_t i = 0; i < 6; ++i) {
      net.transmit(a, b.id(), "x", prof, {a.id(), i, std::vector<std::byte>(8)});
      sim.sleep_for(milliseconds(1));
    }
  });
  sim.run();

  ASSERT_EQ(engine.log().size(), 6u);
  engine.set_log_capacity(2);
  ASSERT_EQ(engine.log().size(), 2u);
  EXPECT_EQ(engine.log()[0].tag, 4u);  // the two newest survive
  EXPECT_EQ(engine.log()[1].tag, 5u);
  EXPECT_EQ(engine.log_summary().records, 6u);
}

// -------------------------------------------------------------- determinism

TEST_F(ChaosNetTest, ProbabilisticVerdictsAreSeedDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    des::Simulation sim;
    net::Network net(sim);
    Rule r;
    r.kind = RuleKind::drop;
    r.probability = 0.3;
    ChaosEngine engine(ChaosPlan{seed, {r}});
    engine.attach(net);
    auto& a = net.create_process(0);
    auto& b = net.create_process(1);
    a.spawn("tx", [&] {
      const net::Profile prof = net::Profile::mona();
      for (std::uint64_t i = 0; i < 200; ++i) {
        net.transmit(a, b.id(), "x", prof,
                     {a.id(), i, std::vector<std::byte>(32)});
        sim.sleep_for(milliseconds(1));
      }
    });
    sim.run();
    return engine.dump_log();
  };

  const std::string log_a = run_once(41);
  const std::string log_b = run_once(41);
  const std::string log_c = run_once(42);
  EXPECT_FALSE(log_a.empty());
  EXPECT_EQ(log_a, log_b);  // same seed -> bit-identical injections
  EXPECT_NE(log_a, log_c);  // different seed -> different schedule
}

// The INV4 premise: a fault-free elastic-Mandelbulb run renders the same
// image regardless of how many servers composite it -- the global-bounds
// camera and the closest-depth compositing make block placement irrelevant.
TEST(ChaosScenario, RenderHashIndependentOfServerCount) {
  colza::testing::ScenarioConfig three;
  three.seed = 5;
  three.servers = 3;
  three.iterations = 2;
  colza::testing::ScenarioConfig four = three;
  four.servers = 4;

  const auto ra = colza::testing::run_elastic_mandelbulb(three);
  const auto rb = colza::testing::run_elastic_mandelbulb(four);
  ASSERT_TRUE(ra.client_done);
  ASSERT_TRUE(rb.client_done);
  const auto ha = colza::testing::reference_hashes(ra);
  const auto hb = colza::testing::reference_hashes(rb);
  ASSERT_EQ(ha.size(), 2u);
  EXPECT_EQ(ha, hb);
}

}  // namespace
}  // namespace colza::chaos

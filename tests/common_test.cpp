// Unit tests for the common layer: Status/Expected, Archive, Rng, JSON, units.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/archive.hpp"
#include "common/arena.hpp"
#include "common/buffer_pool.hpp"
#include "common/checksum.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace colza {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::ok);
  EXPECT_NO_THROW(s.check());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::Timeout("rpc to node 3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::timeout);
  EXPECT_EQ(s.message(), "rpc to node 3");
  EXPECT_EQ(s.to_string(), "timeout: rpc to node 3");
  EXPECT_THROW(s.check(), std::runtime_error);
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::internal); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_TRUE(e.status().ok());
}

TEST(Expected, HoldsStatus) {
  Expected<int> e(Status::NotFound("pipeline x"));
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), StatusCode::not_found);
  EXPECT_THROW((void)e.value(), std::runtime_error);
}

TEST(Expected, RejectsOkStatus) {
  EXPECT_THROW(Expected<int>{Status::Ok()}, std::logic_error);
}

// ---------------------------------------------------------------- Archive

TEST(Archive, RoundTripScalars) {
  auto bytes = pack(std::int32_t{-7}, 3.5, std::uint8_t{255}, true);
  std::int32_t i = 0;
  double d = 0;
  std::uint8_t b = 0;
  bool f = false;
  unpack(bytes, i, d, b, f);
  EXPECT_EQ(i, -7);
  EXPECT_EQ(d, 3.5);
  EXPECT_EQ(b, 255);
  EXPECT_TRUE(f);
}

TEST(Archive, RoundTripStringsAndVectors) {
  std::vector<double> v{1.0, 2.5, -3.0};
  std::string s = "colza pipeline";
  std::vector<std::string> names{"a", "", "long string with spaces"};
  auto bytes = pack(v, s, names);
  std::vector<double> v2;
  std::string s2;
  std::vector<std::string> names2;
  unpack(bytes, v2, s2, names2);
  EXPECT_EQ(v, v2);
  EXPECT_EQ(s, s2);
  EXPECT_EQ(names, names2);
}

TEST(Archive, RoundTripOptionalAndMap) {
  std::optional<int> some{5};
  std::optional<int> none;
  std::map<std::string, std::uint64_t> m{{"x", 1}, {"y", 2}};
  auto bytes = pack(some, none, m);
  std::optional<int> some2;
  std::optional<int> none2{99};
  std::map<std::string, std::uint64_t> m2;
  unpack(bytes, some2, none2, m2);
  EXPECT_EQ(some2, some);
  EXPECT_EQ(none2, none);
  EXPECT_EQ(m2, m);
}

struct Point {
  double x = 0, y = 0;
  std::string label;
  template <typename Ar>
  void serialize(Ar& ar) {
    ar & x & y & label;
  }
  bool operator==(const Point&) const = default;
};

TEST(Archive, RoundTripUserType) {
  Point p{1.5, -2.5, "origin"};
  std::vector<Point> pts{p, {0, 0, ""}};
  auto bytes = pack(p, pts);
  Point q;
  std::vector<Point> qs;
  unpack(bytes, q, qs);
  EXPECT_EQ(q, p);
  EXPECT_EQ(qs, pts);
}

TEST(Archive, TruncatedInputThrows) {
  auto bytes = pack(std::uint64_t{12345});
  bytes.resize(3);
  std::uint64_t out = 0;
  EXPECT_THROW(unpack(bytes, out), std::runtime_error);
}

TEST(Archive, CorruptVectorSizeThrows) {
  // A vector claiming 2^60 elements must not allocate; it must throw.
  auto bytes = pack(std::uint64_t{1ULL << 60});
  std::vector<double> v;
  EXPECT_THROW(unpack(bytes, v), std::runtime_error);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(5);
  Rng child = a.fork();
  Rng a2(5);
  Rng child2 = a2.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child(), child2());
}

// ---------------------------------------------------------------- JSON

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(json::parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(Json, ParsesNested) {
  auto v = json::parse(R"({"pipeline":"iso","levels":[0.1,0.2],"opts":{"clip":true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.string_or("pipeline", ""), "iso");
  ASSERT_TRUE(v.find("levels")->is_array());
  EXPECT_EQ(v.find("levels")->as_array().size(), 2u);
  EXPECT_TRUE(v.find("opts")->bool_or("clip", false));
}

TEST(Json, DefaultsOnMissingKeys) {
  auto v = json::parse(R"({"a":1})");
  EXPECT_DOUBLE_EQ(v.number_or("a", 0), 1.0);
  EXPECT_DOUBLE_EQ(v.number_or("b", 7.5), 7.5);
  EXPECT_EQ(v.string_or("b", "dflt"), "dflt");
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(Json, DumpRoundTrips) {
  const std::string src = R"({"arr":[1,2.5,"s",null,true],"n":-3})";
  auto v = json::parse(src);
  auto v2 = json::parse(v.dump());
  EXPECT_EQ(v2.dump(), v.dump());
}

TEST(Json, MalformedThrows) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json::parse("tru"), std::runtime_error);
  EXPECT_THROW(json::parse("1 2"), std::runtime_error);
}

// ---------------------------------------------------------------- units

TEST(Units, FormatSize) {
  EXPECT_EQ(format_size(8), "8 B");
  EXPECT_EQ(format_size(2 * KiB), "2 KiB");
  EXPECT_EQ(format_size(512 * KiB), "512 KiB");
  EXPECT_EQ(format_size(8 * MiB), "8 MiB");
  EXPECT_EQ(format_size(3 * GiB), "3 GiB");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration_ns(500), "500 ns");
  EXPECT_EQ(format_duration_ns(1500000), "1.5 ms");
  EXPECT_EQ(format_duration_ns(2000000000ULL), "2 s");
}

// ------------------------------------------------------------- BufferPool

TEST(BufferPool, ReusesFreedStorage) {
  common::BufferPool pool;
  std::byte* first = nullptr;
  {
    common::Buffer b = pool.acquire(100);
    first = b.data();
    EXPECT_EQ(b.size(), 100u);
  }
  EXPECT_EQ(pool.idle_buffers(), 1u);
  // Same size class (128 B): must get the identical block back.
  common::Buffer b2 = pool.acquire(120);
  EXPECT_EQ(b2.data(), first);
  EXPECT_EQ(b2.size(), 120u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(BufferPool, RoundsUpToPowerOfTwoClasses) {
  common::BufferPool pool;
  { common::Buffer b = pool.acquire(65); }     // class 128
  { common::Buffer b = pool.acquire(1); }      // class 64 (minimum)
  EXPECT_EQ(pool.idle_buffers(), 2u);
  common::Buffer small = pool.acquire(60);     // hits the 64 B block
  common::Buffer medium = pool.acquire(128);   // hits the 128 B block
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(BufferPool, CopyOfPreservesContents) {
  common::BufferPool pool;
  std::vector<std::byte> src(37);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::byte>(i * 7);
  common::Buffer b = pool.copy_of(src);
  ASSERT_EQ(b.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(b.data()[i], src[i]);
}

TEST(BufferPool, OversizedRequestsBypassPool) {
  common::BufferPool pool;
  const std::size_t huge =
      (std::size_t{1} << common::BufferPool::kMaxClassLog2) + 1;
  { common::Buffer b = pool.acquire(huge); EXPECT_EQ(b.size(), huge); }
  EXPECT_EQ(pool.idle_buffers(), 0u);  // not recycled
  EXPECT_EQ(pool.hits(), 0u);
}

TEST(BufferPool, FreelistDepthIsCapped) {
  common::BufferPool pool;
  std::vector<common::Buffer> live;
  for (std::size_t i = 0; i < common::BufferPool::kMaxPerClass + 10; ++i)
    live.push_back(pool.acquire(64));
  live.clear();  // all return to the 64 B class at once
  EXPECT_EQ(pool.idle_buffers(), common::BufferPool::kMaxPerClass);
  pool.trim();
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(BufferPool, AdoptedVectorIsNotPooled) {
  common::BufferPool pool;
  std::vector<std::byte> v(50, std::byte{42});
  { common::Buffer b(std::move(v)); EXPECT_EQ(b.size(), 50u); }
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(BufferPool, MoveTransfersOwnership) {
  common::BufferPool pool;
  common::Buffer a = pool.acquire(64);
  std::byte* p = a.data();
  common::Buffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  b = pool.acquire(64);    // move-assign releases the old block to the pool
  EXPECT_EQ(pool.idle_buffers(), 1u);
}

TEST(BufferPool, FreedBlockNeverServesAMismatchedClass) {
  common::BufferPool pool;
  { common::Buffer big = pool.acquire(200); }  // class 256 recycled
  common::Buffer small = pool.acquire(64);     // class 64: different freelist
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 2u);
  common::Buffer big2 = pool.acquire(129);  // class 256 again: reuse
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.idle_buffers(), 0u);
}

TEST(BufferPool, ReuseKeepsLogicalSizeIndependentOfCapacity) {
  common::BufferPool pool;
  { common::Buffer b = pool.acquire(100); }  // class-128 block recycled
  common::Buffer b = pool.acquire(70);       // same class, shorter length
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(b.size(), 70u);
  EXPECT_EQ(b.span().size(), 70u);
  std::span<const std::byte> view = b;  // implicit conversion
  EXPECT_EQ(view.size(), 70u);
}

// Adversarial free/alloc interleaving: a seeded random walk acquires and
// releases buffers of mixed size classes while dozens stay live. Each live
// buffer carries a distinct fill pattern verified at release time, so any
// aliasing between a recycled block and a still-live buffer (the classic
// pool double-hand-out bug) shows up as a corrupted pattern.
TEST(BufferPool, AdversarialInterleavingNeverAliasesLiveBuffers) {
  common::BufferPool pool;
  Rng rng(20260805);
  struct Live {
    common::Buffer buf;
    std::byte fill{};
  };
  std::vector<Live> live;
  // Sizes straddle class boundaries (64/128/4096) plus an unpooled giant.
  const std::size_t sizes[] = {1,    60,   64,   65,      100,
                               128,  1000, 4096, 5000,    1u << 20,
                               (std::size_t{1} << common::BufferPool::kMaxClassLog2) + 1};
  std::uint64_t pattern = 0;
  for (int step = 0; step < 1200; ++step) {
    const bool alloc = live.empty() || (live.size() < 48 && rng.below(2) == 0);
    if (alloc) {
      const std::size_t n = sizes[rng.below(std::size(sizes))];
      common::Buffer b = pool.acquire(n);
      ASSERT_EQ(b.size(), n);
      const auto fill = static_cast<std::byte>(++pattern & 0xff);
      std::fill(b.data(), b.data() + b.size(), fill);
      live.push_back(Live{std::move(b), fill});
    } else {
      const auto victim = static_cast<std::size_t>(rng.below(live.size()));
      const Live& l = live[victim];
      // The pattern written at acquire time must have survived every pool
      // round-trip other buffers made since.
      bool intact = true;
      for (const std::byte x : l.buf.span()) intact = intact && x == l.fill;
      ASSERT_TRUE(intact) << "buffer contents clobbered at step " << step;
      std::swap(live[victim], live.back());
      live.pop_back();  // releases the victim's storage back to the pool
    }
  }
  EXPECT_GT(pool.hits(), 0u);  // the walk actually exercised reuse
  live.clear();
  // Every pooled class respects the freelist depth cap even after the walk.
  EXPECT_LE(pool.idle_buffers(),
            (common::BufferPool::kMaxClassLog2 -
             common::BufferPool::kMinClassLog2 + 1) *
                common::BufferPool::kMaxPerClass);
}

// ---------------------------------------------------------------- Arena

TEST(Arena, BumpAllocatesAndTracksHighWater) {
  common::Arena arena(256);
  void* a = arena.allocate(64);
  void* b = arena.allocate(64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.bytes_in_use(), 128u);
  EXPECT_EQ(arena.high_water(), 128u);
  // Oversized request gets a dedicated slab rather than failing.
  void* big = arena.allocate(4096);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.slab_bytes_reserved(), 4096u + 256u);
}

TEST(Arena, ResetReusesSlabsAcrossIterations) {
  common::Arena arena(256);
  // Simulates the per-iteration protocol-state lifecycle: fill, reset,
  // refill. After the first iteration the slab set must stop growing (under
  // ASan this also proves reset+reuse never touches poisoned bytes).
  std::size_t reserved_after_first = 0;
  for (int iter = 0; iter < 5; ++iter) {
    for (int i = 0; i < 32; ++i) {
      auto* p = static_cast<std::uint64_t*>(
          arena.allocate(sizeof(std::uint64_t), alignof(std::uint64_t)));
      *p = static_cast<std::uint64_t>(iter * 100 + i);
      EXPECT_EQ(*p, static_cast<std::uint64_t>(iter * 100 + i));
    }
    if (iter == 0) reserved_after_first = arena.slab_bytes_reserved();
    arena.reset();
    EXPECT_EQ(arena.bytes_in_use(), 0u);
  }
  EXPECT_EQ(arena.slab_bytes_reserved(), reserved_after_first);
  EXPECT_EQ(arena.resets(), 5u);
}

TEST(Arena, AllocatorWorksWithStandardContainers) {
  common::Arena arena;
  using Alloc = common::ArenaAllocator<std::pair<const int, int>>;
  std::map<int, int, std::less<int>, Alloc> m{Alloc(arena)};
  for (int i = 0; i < 100; ++i) m[i] = i * i;
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.at(7), 49);
  if (common::arena_enabled()) EXPECT_GT(arena.bytes_in_use(), 0u);
  m.clear();
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(Arena, GlobalTotalsAggregateAcrossArenas) {
  const auto before = common::Arena::totals().bytes_in_use;
  {
    common::Arena a1(128), a2(128);
    a1.allocate(32);
    a2.allocate(32);
    EXPECT_EQ(common::Arena::totals().bytes_in_use, before + 64);
  }
  // Destruction returns the arenas' contribution.
  EXPECT_EQ(common::Arena::totals().bytes_in_use, before);
}

// ---------------------------------------------------------------- Crc32c

std::vector<std::byte> to_bytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::transform(s.begin(), s.end(), out.begin(),
                 [](char c) { return static_cast<std::byte>(c); });
  return out;
}

TEST(Crc32c, StandardCheckValue) {
  // The canonical CRC32C test vector (RFC 3720 appendix B.4).
  EXPECT_EQ(common::crc32c(to_bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(common::crc32c(std::span<const std::byte>{}), 0u);
}

TEST(Crc32c, SeedComposes) {
  const auto whole = to_bytes("colza staging data plane");
  for (std::size_t split = 0; split <= whole.size(); ++split) {
    const std::span<const std::byte> head(whole.data(), split);
    const std::span<const std::byte> tail(whole.data() + split,
                                          whole.size() - split);
    EXPECT_EQ(common::crc32c(tail, common::crc32c(head)),
              common::crc32c(whole))
        << "split at " << split;
  }
}

TEST(Crc32c, DetectsEverySingleBitFlip) {
  auto data = to_bytes("silent corruption must not stay silent");
  const std::uint32_t good = common::crc32c(data);
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    EXPECT_NE(common::crc32c(data), good) << "bit " << bit;
    data[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
  }
  EXPECT_EQ(common::crc32c(data), good);
}

// The dispatch contract: whatever path crc32c() picks (COLZA_SIMD governs
// it, scripts/check.sh cross-checks both settings), its result is
// bit-identical to the scalar table fallback -- including every length mod
// 8 (the hardware path switches from 64-bit to byte steps there) and
// nonzero seeds.
TEST(Crc32c, ActivePathMatchesScalarBitForBit) {
  Rng rng(41);
  for (int round = 0; round < 64; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.below(1024));
    std::vector<std::byte> data(n);
    for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
    const auto seed =
        round % 2 != 0 ? static_cast<std::uint32_t>(rng.below(0x100000000ull))
                       : 0u;
    const std::uint32_t scalar =
        ~common::detail::crc32c_scalar(data.data(), data.size(), ~seed);
    EXPECT_EQ(common::crc32c(data, seed), scalar) << "len " << n;
#if defined(__x86_64__)
    if (common::detail::crc32c_hw_usable()) {
      EXPECT_EQ(~common::detail::crc32c_hw(data.data(), data.size(), ~seed),
                scalar)
          << "len " << n;
    }
#endif
  }
}

}  // namespace
}  // namespace colza

// The crash storm (ctest label tier2): one staging server killed every
// iteration for 30 Mandelbulb iterations. With replication 2 and a live
// Supervisor the run must show
//   * zero client-visible iteration failures (every iteration commits), and
//   * zero full re-stages (recovery is buddy promotion + targeted
//     re-stages, never the old scratch path),
// while the supervised respawns keep the staging capacity constant. The
// storm also pins the degraded no-supervisor behaviour and the bit-identical
// recovery timeline the --chaos-seed replay workflow relies on.
#include <gtest/gtest.h>

#include <cstdint>

#include "chaos/chaos.hpp"
#include "invariants.hpp"

namespace colza::testing {
namespace {

using des::seconds;

constexpr std::uint64_t kStormSeed = 29;

// One crash per iteration: the storm period matches the iteration cadence
// (compute_between dominates), and the node-targeted rules round-robin over
// all four server nodes, so respawned replacements are hit like founders.
ScenarioConfig storm_scenario(std::uint64_t iterations) {
  ScenarioConfig cfg;
  cfg.seed = kStormSeed;
  cfg.servers = 4;
  cfg.iterations = iterations;
  cfg.replication = 2;
  cfg.supervisor = true;
  cfg.supervisor_cfg.restart_budget = 64;
  cfg.compute_between = seconds(40);
  cfg.resilient.attempt_timeout = seconds(20);
  cfg.deadline = seconds(20000);
  cfg.plan = chaos::crash_storm_plan(/*base_node=*/100, /*nodes=*/4,
                                     /*start=*/seconds(10),
                                     /*period=*/seconds(45),
                                     /*crashes=*/iterations, kStormSeed);
  return cfg;
}

TEST(CrashStorm, ThirtyIterationsZeroFailuresZeroFullRestages) {
  const ScenarioConfig cfg = storm_scenario(30);
  const ScenarioResult res = run_elastic_mandelbulb(cfg);

  ASSERT_TRUE(res.client_done);
  for (const auto& it : res.iterations) {
    EXPECT_EQ(it.code, StatusCode::ok) << "iteration " << it.iteration;
  }
  EXPECT_EQ(res.resilient.full_restages, 0);

  // Every crash found a live victim and every victim was replaced.
  int crashes = 0;
  for (const auto& rec : res.injections) {
    crashes += rec.kind == chaos::RuleKind::crash ? 1 : 0;
  }
  EXPECT_EQ(crashes, 30);
  EXPECT_EQ(res.supervisor.deaths_seen, 30);
  EXPECT_EQ(res.supervisor.respawns_joined, 30);
  EXPECT_EQ(res.supervisor.nodes_quarantined, 0);
  EXPECT_EQ(res.supervisor.budget_exhausted, 0);

  // Capacity is self-healed: 4 servers alive at the end, and the protocol
  // invariants hold on the survivors.
  std::size_t alive = 0;
  for (const auto& s : res.servers) alive += s.alive ? 1 : 0;
  EXPECT_EQ(alive, 4u);
  EXPECT_EQ(check_two_phase_atomicity(res), "");
  EXPECT_EQ(check_swim_convergence(res), "");

  // Recovery must not change a pixel: every rendered hash matches the
  // fault-free reference of the same scenario shape.
  ScenarioConfig ref_cfg = cfg;
  ref_cfg.plan = chaos::ChaosPlan{};
  ref_cfg.supervisor = false;
  const ScenarioResult ref = run_elastic_mandelbulb(ref_cfg);
  ASSERT_TRUE(ref.client_done);
  EXPECT_EQ(check_render_hashes(res, reference_hashes(ref)), "");
}

// Supervisor off: every crash permanently bleeds a server. Replication
// still recovers the staged data (buddy promotion), so a short storm
// completes without client-visible failures, but capacity is not restored
// -- the survivors shrink by one per crash.
TEST(CrashStorm, WithoutSupervisorCapacityBleeds) {
  ScenarioConfig cfg = storm_scenario(3);
  cfg.supervisor = false;
  // Unsupervised, iterations run in milliseconds of virtual time, so a storm
  // starting in the compute gap would never hit one; start it at 3s to land
  // the first crash inside iteration 1's stage/execute window.
  cfg.plan = chaos::crash_storm_plan(/*base_node=*/100, /*nodes=*/4,
                                     /*start=*/seconds(3),
                                     /*period=*/seconds(45),
                                     /*crashes=*/3, kStormSeed);
  const ScenarioResult res = run_elastic_mandelbulb(cfg);

  ASSERT_TRUE(res.client_done);
  for (const auto& it : res.iterations) {
    EXPECT_EQ(it.code, StatusCode::ok) << "iteration " << it.iteration;
  }
  EXPECT_GT(res.resilient.partial_recoveries, 0);
  EXPECT_EQ(res.supervisor.respawns_joined, 0);
  std::size_t alive = 0;
  for (const auto& s : res.servers) alive += s.alive ? 1 : 0;
  EXPECT_EQ(alive, 1u);  // 4 founders - 3 unreplaced crashes
}

// Same --chaos-seed => bit-identical recovery timeline: injection log,
// per-iteration outcomes and frozen views, end time, and the resilient /
// supervisor counters all replay exactly.
TEST(CrashStorm, RecoveryTimelineIsBitIdenticalForSameSeed) {
  const ScenarioConfig cfg = storm_scenario(6);
  const ScenarioResult a = run_elastic_mandelbulb(cfg);
  const ScenarioResult b = run_elastic_mandelbulb(cfg);

  ASSERT_TRUE(a.client_done);
  EXPECT_EQ(a.chaos_log, b.chaos_log);
  EXPECT_TRUE(a.injections == b.injections);
  EXPECT_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].code, b.iterations[i].code);
    EXPECT_EQ(a.iterations[i].view, b.iterations[i].view);
  }
  EXPECT_EQ(a.resilient.attempts, b.resilient.attempts);
  EXPECT_EQ(a.resilient.partial_recoveries, b.resilient.partial_recoveries);
  EXPECT_EQ(a.resilient.targeted_restages, b.resilient.targeted_restages);
  EXPECT_EQ(a.supervisor.respawns_joined, b.supervisor.respawns_joined);
  EXPECT_EQ(reference_hashes(a), reference_hashes(b));
}

}  // namespace
}  // namespace colza::testing

// The viewer delivery tier (docs/viewer.md): frame codec round-trips and
// corruption detection, single-flight rendering under observer fan-out,
// per-viewer backpressure (skip-to-latest-keyframe, never upstream), the
// steering channel's boundary application and bit-identical log replay, the
// remote push path through ViewerClient, and the deterministic churn hook
// the chaos layer drives.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "render/render.hpp"
#include "rpc/engine.hpp"
#include "viewer/frame.hpp"
#include "viewer/steering.hpp"
#include "viewer/viewer.hpp"

namespace colza::viewer {
namespace {

using des::milliseconds;
using des::seconds;

// A deterministic pseudo-random image: every pixel changes with the
// iteration, camera and steered parameter, so deltas are never trivially
// empty and two frames agree iff their inputs do.
FrameImage test_image(std::uint64_t iteration, std::uint32_t camera,
                      double param, std::uint32_t w = 8, std::uint32_t h = 8) {
  FrameImage img;
  img.width = w;
  img.height = h;
  img.rgba.resize(std::size_t{w} * h * 4);
  std::uint64_t x = iteration * 1000003 + camera * 97 +
                    static_cast<std::uint64_t>(param * 1e6) + 0x5eed;
  for (auto& b : img.rgba) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    b = static_cast<std::uint8_t>(x >> 56);
  }
  return img;
}

Producer test_producer() {
  return [](std::uint64_t it, std::uint32_t cam, double param) {
    return test_image(it, cam, param);
  };
}

// ---------------------------------------------------------------- frame codec

TEST(FrameCodec, KeyframeRoundTrips) {
  const FrameImage img = test_image(1, 0, 0.0);
  const EncodedFrame f = encode_key("pipe", 3, 7, img);
  EXPECT_EQ(f.kind, static_cast<std::uint8_t>(FrameKind::key));
  EXPECT_EQ(f.image_hash, img.hash());
  auto decoded = decode(f, nullptr);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(*decoded, img);
}

TEST(FrameCodec, DeltaRoundTripsAgainstBase) {
  const FrameImage base = test_image(1, 0, 0.0);
  FrameImage next = base;
  next.rgba[5] ^= 0xff;  // one changed pixel channel
  const EncodedFrame f = encode_delta("pipe", 0, 2, next, 1, base);
  EXPECT_EQ(f.kind, static_cast<std::uint8_t>(FrameKind::delta));
  EXPECT_EQ(f.base_iteration, 1u);
  // A near-identical frame XOR-RLEs to far less than the raw plane.
  EXPECT_LT(f.payload.size(), next.rgba.size() / 4);
  auto decoded = decode(f, &base);
  ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
  EXPECT_EQ(*decoded, next);
}

TEST(FrameCodec, CrcCatchesPayloadCorruption) {
  const FrameImage img = test_image(4, 1, 0.5);
  EncodedFrame f = encode_key("pipe", 1, 4, img);
  f.payload[10] ^= 0x01;  // one flipped bit
  auto decoded = decode(f, nullptr);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), StatusCode::corrupt);
}

TEST(FrameCodec, DeltaWithoutBaseIsRejected) {
  const FrameImage base = test_image(1, 0, 0.0);
  const FrameImage next = test_image(2, 0, 0.0);
  const EncodedFrame f = encode_delta("pipe", 0, 2, next, 1, base);
  auto decoded = decode(f, nullptr);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), StatusCode::failed_precondition);
}

TEST(FrameCodec, DeltaAgainstWrongBaseIsDetected) {
  const FrameImage base = test_image(1, 0, 0.0);
  const FrameImage wrong = test_image(9, 0, 0.0);
  const FrameImage next = test_image(2, 0, 0.0);
  const EncodedFrame f = encode_delta("pipe", 0, 2, next, 1, base);
  // The XOR applies cleanly against any same-sized image; only the decoded
  // image hash exposes that the base was not the encoder's.
  auto decoded = decode(f, &wrong);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), StatusCode::corrupt);
}

// A hostile delta whose run lengths are chosen so their 64-bit sum wraps
// around: the CRC is honest (it covers the payload as sent), so only the
// RLE bounds check stands between this frame and an out-of-bounds write.
TEST(FrameCodec, DeltaWithWrappingRunLengthsIsRejected) {
  const FrameImage base = test_image(1, 0, 0.0);  // 8x8 -> n = 256 bytes
  EncodedFrame f;
  f.pipeline = "pipe";
  f.camera = 0;
  f.iteration = 2;
  f.kind = static_cast<std::uint8_t>(FrameKind::delta);
  f.base_iteration = 1;
  f.width = base.width;
  f.height = base.height;
  auto put_varint = [&](std::uint64_t v) {
    while (v >= 0x80) {
      f.payload.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    f.payload.push_back(static_cast<std::uint8_t>(v));
  };
  // zeros + lit == 16 modulo 2^64: a sum-form bounds check accepts this and
  // then writes 32 literal bytes far outside the 256-byte image.
  put_varint(~std::uint64_t{0} - 15);  // zeros = 2^64 - 16
  put_varint(32);                      // lit
  f.payload.insert(f.payload.end(), 32, 0xFF);
  f.crc = common::crc32c(std::as_bytes(std::span(f.payload)));
  f.image_hash = 0;
  auto decoded = decode(f, &base);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), StatusCode::corrupt);
}

TEST(FrameCodec, DimensionMismatchFallsBackToKeyframe) {
  const FrameImage base = test_image(1, 0, 0.0, 8, 8);
  const FrameImage next = test_image(2, 0, 0.0, 16, 16);
  const EncodedFrame f = encode_delta("pipe", 0, 2, next, 1, base);
  EXPECT_EQ(f.kind, static_cast<std::uint8_t>(FrameKind::key));
  auto decoded = decode(f, nullptr);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, next);
}

// The hoisted hash helper (common/hash.hpp): quantizing a FrameBuffer into a
// FrameImage preserves the image hash, so viewer-side verification compares
// directly against render-side content_hash().
TEST(FrameCodec, ImageHashMatchesFrameBufferContentHash) {
  render::FrameBuffer fb(4, 4);
  fb.clear();
  for (std::size_t i = 0; i < fb.rgba.size(); ++i) {
    fb.rgba[i] = static_cast<float>(i) / static_cast<float>(fb.rgba.size());
  }
  const FrameImage img = FrameImage::from(fb);
  EXPECT_EQ(img.hash(), fb.content_hash());
}

// ----------------------------------------------------------------- the tier

struct TierRig {
  des::Simulation sim;
  net::Network net{sim};
  net::Process& proc;
  rpc::Engine engine;
  ViewerTier tier;

  explicit TierRig(ViewerConfig cfg = {}, net::NodeId node = 1)
      : proc(net.create_process(node)),
        engine(proc, net::Profile::mona()),
        tier(proc, engine, std::move(cfg)) {}
};

TEST(ViewerTier, SingleFlightRenderUnderFanOut) {
  TierRig rig;
  rig.tier.set_producer("pipe", test_producer());
  constexpr std::size_t kViewers = 50;
  constexpr std::uint64_t kIterations = 10;
  rig.proc.spawn("driver", [&] {
    for (std::size_t i = 0; i < kViewers; ++i) {
      const std::uint64_t id = rig.tier.connect(/*quality=*/0);
      ASSERT_TRUE(rig.tier.subscribe(id, "pipe", 0).ok());
    }
    for (std::uint64_t it = 1; it <= kIterations; ++it) {
      rig.tier.publish("pipe", it);
      rig.sim.sleep_for(milliseconds(10));
    }
    rig.tier.quiesce();
    // Exactly one render per (pipeline, iteration, camera), no matter how
    // many viewers watch -- single-flight is structural.
    EXPECT_EQ(rig.tier.renders_total(), kIterations);
    // Gold-class buckets never run dry at this size: every viewer received
    // every frame from the cache.
    EXPECT_EQ(rig.tier.frames_delivered(), kViewers * kIterations);
    EXPECT_EQ(rig.tier.skips_total(), 0u);
    EXPECT_GT(rig.tier.cache_hit_rate(), 0.95);
  });
  rig.sim.run();
}

// Every delivered frame lands in the tier's per-proc frame-bytes histogram,
// and the stats document summarizes the distribution through the log2-bucket
// quantile approximation (keyframes and deltas differ by orders of
// magnitude, so min <= p50 <= p99 <= max is a real spread here).
TEST(ViewerTier, StatsReportFrameByteQuantiles) {
  obs::MetricsRegistry::global().reset();
  TierRig rig;
  rig.tier.set_producer("pipe", test_producer());
  rig.proc.spawn("driver", [&] {
    for (std::size_t i = 0; i < 8; ++i) {
      const std::uint64_t id = rig.tier.connect(/*quality=*/0);
      ASSERT_TRUE(rig.tier.subscribe(id, "pipe", 0).ok());
    }
    for (std::uint64_t it = 1; it <= 6; ++it) {
      rig.tier.publish("pipe", it);
      rig.sim.sleep_for(milliseconds(10));
    }
    rig.tier.quiesce();

    const obs::Histogram* h = obs::MetricsRegistry::global().find_histogram(
        rig.tier.frame_bytes_metric());
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, rig.tier.frames_delivered());
    const double p50 = h->approx_quantile(0.5);
    const double p99 = h->approx_quantile(0.99);
    EXPECT_GE(p50, static_cast<double>(h->min));
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, static_cast<double>(h->max));

    const std::string dump = rig.tier.stats_json().dump();
    EXPECT_NE(dump.find("frame_bytes_p50"), std::string::npos);
    EXPECT_NE(dump.find("frame_bytes_p99"), std::string::npos);
  });
  rig.sim.run();
}

TEST(ViewerTier, PublishWithoutSubscribersRendersNothing) {
  TierRig rig;
  rig.tier.set_producer("pipe", test_producer());
  rig.proc.spawn("driver", [&] {
    rig.tier.publish("pipe", 1);
    rig.tier.quiesce();
    EXPECT_EQ(rig.tier.renders_total(), 0u);
  });
  rig.sim.run();
}

TEST(ViewerTier, SlowViewerSkipsToLatestKeyframe) {
  ViewerConfig cfg;
  // One starved class: 100 B/s against ~330-byte frames, bucket of 400.
  cfg.classes = {{"starved", 1, 100, 400}};
  TierRig rig(cfg);
  rig.tier.set_producer("pipe", test_producer());
  constexpr std::uint64_t kIterations = 20;
  rig.proc.spawn("driver", [&] {
    const std::uint64_t id = rig.tier.connect(0);
    ASSERT_TRUE(rig.tier.subscribe(id, "pipe", 0).ok());
    const des::Time publish_started = rig.sim.now();
    for (std::uint64_t it = 1; it <= kIterations; ++it) {
      rig.tier.publish("pipe", it);
      rig.sim.sleep_for(milliseconds(10));
    }
    // Backpressure is per-viewer only: the publisher's clock advanced by
    // exactly its own sleeps, regardless of the starved session.
    EXPECT_EQ(rig.sim.now(), publish_started + kIterations * milliseconds(10));
    rig.tier.quiesce();
    // The viewer was skipped while broke, then resynchronized on the newest
    // frame -- it never received the full backlog.
    EXPECT_GT(rig.tier.skips_total(), 0u);
    EXPECT_EQ(rig.tier.renders_total(), kIterations);
    EXPECT_LT(rig.tier.frames_delivered(), kIterations);
    EXPECT_GT(rig.tier.frames_delivered(), 0u);
  });
  rig.sim.run();
}

TEST(ViewerTier, PausedClassHoldsDeliveriesUntilResumed) {
  TierRig rig;
  rig.tier.set_producer("pipe", test_producer());
  rig.proc.spawn("driver", [&] {
    rig.tier.set_class_weight("gold", 0);
    const std::uint64_t id = rig.tier.connect(0);  // gold
    ASSERT_TRUE(rig.tier.subscribe(id, "pipe", 0).ok());
    rig.tier.publish("pipe", 1);
    rig.sim.sleep_for(seconds(1));
    // Rendered (the producer side never pauses) but undelivered: the queued
    // item waits in place while its class weight is 0.
    EXPECT_EQ(rig.tier.renders_total(), 1u);
    EXPECT_EQ(rig.tier.frames_delivered(), 0u);
    rig.tier.set_class_weight("gold", 4);
    rig.tier.quiesce();
    EXPECT_EQ(rig.tier.frames_delivered(), 1u);
  });
  rig.sim.run();
}

TEST(ViewerTier, LateSubscriberGetsCurrentFrame) {
  TierRig rig;
  rig.tier.set_producer("pipe", test_producer());
  rig.proc.spawn("driver", [&] {
    const std::uint64_t early = rig.tier.connect(0);
    ASSERT_TRUE(rig.tier.subscribe(early, "pipe", 0).ok());
    rig.tier.publish("pipe", 1);
    rig.tier.quiesce();
    const std::uint64_t delivered_before = rig.tier.frames_delivered();
    const std::uint64_t late = rig.tier.connect(0);
    ASSERT_TRUE(rig.tier.subscribe(late, "pipe", 0).ok());
    rig.tier.quiesce();
    // The joiner was served the cached frame without a new render.
    EXPECT_EQ(rig.tier.renders_total(), 1u);
    EXPECT_EQ(rig.tier.frames_delivered(), delivered_before + 1);
  });
  rig.sim.run();
}

// ----------------------------------------------------------------- steering

TEST(ViewerSteering, UpdatesApplyOnlyAtIterationBoundaries) {
  TierRig rig;
  std::vector<double> seen_params;
  rig.tier.set_producer("pipe", [&](std::uint64_t it, std::uint32_t cam,
                                    double param) {
    seen_params.push_back(param);
    return test_image(it, cam, param);
  });
  rig.proc.spawn("driver", [&] {
    const std::uint64_t id = rig.tier.connect(0);
    ASSERT_TRUE(rig.tier.subscribe(id, "pipe", 0).ok());

    SteeringUpdate cam;
    cam.kind = static_cast<std::uint8_t>(SteeringUpdate::Kind::camera);
    cam.camera = 0;
    cam.value = 1.25;
    cam.session = id;
    SteeringUpdate knob;
    knob.kind = static_cast<std::uint8_t>(SteeringUpdate::Kind::parameter);
    knob.name = "isovalue";
    knob.value = 0.7;
    knob.session = id;

    rig.tier.publish("pipe", 1);  // boundary before any steering
    rig.tier.quiesce();
    rig.tier.steer("pipe", cam);
    rig.tier.steer("pipe", knob);
    // Queued, not applied: nothing changes until the next boundary.
    EXPECT_EQ(rig.tier.parameter("pipe", "isovalue"), 0.0);
    EXPECT_TRUE(rig.tier.steering_log().empty());

    rig.tier.publish("pipe", 2);
    rig.tier.quiesce();
    EXPECT_EQ(rig.tier.parameter("pipe", "isovalue"), 0.7);
    EXPECT_EQ(rig.tier.steering_log().size(), 2u);
    // Frame 1 rendered with the default camera parameter, frame 2 with the
    // steered one -- boundary application, not mid-iteration.
    ASSERT_EQ(seen_params.size(), 2u);
    EXPECT_EQ(seen_params[0], 0.0);
    EXPECT_EQ(seen_params[1], 1.25);
  });
  rig.sim.run();
}

TEST(ViewerSteering, DrainIsIdempotentPerIteration) {
  TierRig rig;
  rig.proc.spawn("driver", [&] {
    SteeringUpdate knob;
    knob.kind = static_cast<std::uint8_t>(SteeringUpdate::Kind::parameter);
    knob.name = "dt";
    knob.value = 2.5;
    rig.tier.steer("pipe", knob);
    auto first = rig.tier.drain("pipe", 3);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].value, 2.5);
    // The publish() hook draining the same boundary is a no-op.
    EXPECT_TRUE(rig.tier.drain("pipe", 3).empty());
    EXPECT_EQ(rig.tier.steering_log().size(), 1u);
  });
  rig.sim.run();
}

// Same steering log + same producer => bit-identical rebuilt log (digest and
// records) and identical rendered frames, with no live steering calls at all.
TEST(ViewerSteering, ReplayFromLogIsBitIdentical) {
  auto run = [](const SteeringLog* replay, SteeringLog* log_out,
                std::vector<std::uint64_t>* hashes_out) {
    TierRig rig;
    std::vector<std::uint64_t> hashes;
    rig.tier.set_producer("pipe", [&](std::uint64_t it, std::uint32_t cam,
                                      double param) {
      FrameImage img = test_image(it, cam, param);
      hashes.push_back(img.hash());
      return img;
    });
    if (replay != nullptr) rig.tier.load_replay(*replay);
    rig.proc.spawn("driver", [&, replay] {
      const std::uint64_t id = rig.tier.connect(0);
      ASSERT_TRUE(rig.tier.subscribe(id, "pipe", 0).ok());
      for (std::uint64_t it = 1; it <= 4; ++it) {
        if (replay == nullptr && it == 2) {
          SteeringUpdate cam;
          cam.kind = static_cast<std::uint8_t>(SteeringUpdate::Kind::camera);
          cam.value = 0.5;
          rig.tier.steer("pipe", cam);
          SteeringUpdate knob;
          knob.kind =
              static_cast<std::uint8_t>(SteeringUpdate::Kind::parameter);
          knob.name = "isovalue";
          knob.value = 0.9;
          rig.tier.steer("pipe", knob);
        }
        rig.tier.publish("pipe", it);
        rig.sim.sleep_for(milliseconds(10));
      }
      rig.tier.quiesce();
    });
    rig.sim.run();
    *log_out = rig.tier.steering_log();
    *hashes_out = std::move(hashes);
  };

  SteeringLog live_log;
  std::vector<std::uint64_t> live_hashes;
  run(nullptr, &live_log, &live_hashes);
  ASSERT_EQ(live_log.size(), 2u);

  SteeringLog replay_log;
  std::vector<std::uint64_t> replay_hashes;
  run(&live_log, &replay_log, &replay_hashes);

  EXPECT_EQ(replay_log, live_log);
  EXPECT_EQ(replay_log.digest(), live_log.digest());
  EXPECT_EQ(replay_hashes, live_hashes);
}

TEST(ViewerSteering, LogJsonRoundTripsAndIsStrict) {
  SteeringLog log;
  SteeringRecord rec;
  rec.seq = 1;
  rec.pipeline = "pipe";
  rec.queued_at = des::microseconds(1500);
  rec.applied_iteration = 3;
  rec.update.kind = static_cast<std::uint8_t>(SteeringUpdate::Kind::parameter);
  rec.update.name = "isovalue";
  rec.update.value = 0.75;
  rec.update.session = 9;
  log.append(rec);
  rec.seq = 2;
  rec.update.kind = static_cast<std::uint8_t>(SteeringUpdate::Kind::camera);
  rec.update.camera = 2;
  rec.update.value = 1.5;
  log.append(rec);
  // Non-microsecond-aligned arrival and a negative steered value (a camera
  // azimuth can be negative): both must survive the JSON round trip with the
  // digest intact.
  rec.seq = 3;
  rec.queued_at = des::microseconds(1500) + 7;
  rec.update.value = -42.25;
  log.append(rec);

  const SteeringLog back = SteeringLog::from_json(log.to_json());
  EXPECT_EQ(back, log);
  EXPECT_EQ(back.digest(), log.digest());

  EXPECT_THROW(SteeringLog::from_json(R"({"recordz":[]})"), std::runtime_error);
  EXPECT_THROW(SteeringLog::from_json(R"({"records":[{"sequence":1}]})"),
               std::runtime_error);
}

// ----------------------------------------------------------- remote push path

TEST(ViewerClientTest, PushSessionDecodesAndVerifiesEveryFrame) {
  des::Simulation sim;
  net::Network net(sim);
  auto& tier_proc = net.create_process(1);
  rpc::Engine tier_engine(tier_proc, net::Profile::mona());
  ViewerTier tier(tier_proc, tier_engine);
  tier.set_producer("pipe", test_producer());

  auto& obs_proc = net.create_process(2);
  rpc::Engine obs_engine(obs_proc, net::Profile::mona());
  ViewerClient client(obs_engine);

  constexpr std::uint64_t kIterations = 6;
  obs_proc.spawn("observer", [&] {
    auto session = client.connect(tier_proc.id(), /*quality=*/0);
    ASSERT_TRUE(session.has_value()) << session.status().to_string();
    ASSERT_TRUE(client.subscribe("pipe", 0).ok());
    for (std::uint64_t it = 1; it <= kIterations; ++it) {
      tier.publish("pipe", it);
      sim.sleep_for(milliseconds(20));
    }
    tier.quiesce();
    sim.sleep_for(milliseconds(20));  // last notify crosses the fabric
    EXPECT_EQ(client.decode_failures(), 0u);
    ASSERT_EQ(client.received().size(), kIterations);
    for (const auto& r : client.received()) {
      EXPECT_EQ(r.image_hash, test_image(r.iteration, 0, 0.0).hash());
    }
    const FrameImage* img = client.image("pipe", 0);
    ASSERT_NE(img, nullptr);
    EXPECT_EQ(img->hash(), test_image(kIterations, 0, 0.0).hash());
    ASSERT_TRUE(client.steer("pipe", SteeringUpdate{
                                         .kind = 1, .name = "dt", .value = 2.0})
                    .ok());
    tier.publish("pipe", kIterations + 1);
    tier.quiesce();
    EXPECT_EQ(tier.parameter("pipe", "dt"), 2.0);
    ASSERT_TRUE(client.disconnect().ok());
    EXPECT_EQ(tier.sessions(), 0u);
  });
  sim.run();
}

// ------------------------------------------------------------------- churn

TEST(ViewerTier, ChurnIsDeterministicInSeedAndFraction) {
  TierRig a(ViewerConfig{}, 1);
  std::size_t dropped_a = 0;
  a.proc.spawn("driver", [&] {
    for (int i = 0; i < 100; ++i) a.tier.connect(0);
    dropped_a = a.tier.churn(0.5, 42);
    EXPECT_EQ(a.tier.sessions(), 100 - dropped_a);
    EXPECT_EQ(a.tier.churn(0.0, 42), 0u);
  });
  a.sim.run();
  EXPECT_GT(dropped_a, 20u);
  EXPECT_LT(dropped_a, 80u);

  // A second tier with the same session ids and seed drops the same count.
  TierRig b(ViewerConfig{}, 1);
  b.proc.spawn("driver", [&] {
    for (int i = 0; i < 100; ++i) b.tier.connect(0);
    EXPECT_EQ(b.tier.churn(0.5, 42), dropped_a);
    // fraction 1.0 empties the tier (u is drawn from [0, 1)).
    EXPECT_EQ(b.tier.churn(1.0, 7), 100 - dropped_a);
    EXPECT_EQ(b.tier.sessions(), 0u);
  });
  b.sim.run();
}

}  // namespace
}  // namespace colza::viewer

// Tests for the resize-capable job scheduler (paper S IV-A) and its
// integration with the elastic staging area.
#include <gtest/gtest.h>

#include <memory>

#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "sched/scheduler.hpp"

namespace colza::sched {
namespace {

using des::seconds;

TEST(Scheduler, SubmitGrowShrinkAccounting) {
  des::Simulation sim;
  Scheduler sched(sim, SchedulerConfig{.total_nodes = 10});
  EXPECT_EQ(sched.free_nodes(), 10u);

  auto job = sched.submit(4);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(sched.free_nodes(), 6u);
  ASSERT_NE(sched.nodes_of(*job), nullptr);
  EXPECT_EQ(sched.nodes_of(*job)->size(), 4u);

  auto grown = sched.grow(*job, 3);
  ASSERT_TRUE(grown.has_value());
  EXPECT_EQ(grown->size(), 3u);
  EXPECT_EQ(sched.free_nodes(), 3u);
  EXPECT_EQ(sched.nodes_of(*job)->size(), 7u);

  ASSERT_TRUE(sched.shrink(*job, {grown->front()}).ok());
  EXPECT_EQ(sched.free_nodes(), 4u);
  EXPECT_EQ(sched.nodes_of(*job)->size(), 6u);

  ASSERT_TRUE(sched.complete(*job).ok());
  EXPECT_EQ(sched.free_nodes(), 10u);
  EXPECT_EQ(sched.nodes_of(*job), nullptr);
}

TEST(Scheduler, DeniesWhenExhausted) {
  des::Simulation sim;
  Scheduler sched(sim, SchedulerConfig{.total_nodes = 4});
  auto a = sched.submit(3);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(sched.submit(2).status().code(), StatusCode::unavailable);
  EXPECT_EQ(sched.grow(*a, 2).status().code(), StatusCode::unavailable);
  ASSERT_TRUE(sched.grow(*a, 1).has_value());  // exactly the last node
  EXPECT_EQ(sched.free_nodes(), 0u);
}

TEST(Scheduler, ValidatesArguments) {
  des::Simulation sim;
  Scheduler sched(sim, SchedulerConfig{.total_nodes = 4});
  EXPECT_EQ(sched.submit(0).status().code(), StatusCode::invalid_argument);
  EXPECT_EQ(sched.grow(999, 1).status().code(), StatusCode::not_found);
  EXPECT_EQ(sched.shrink(999, {}).code(), StatusCode::not_found);
  EXPECT_EQ(sched.complete(999).code(), StatusCode::not_found);
  auto job = sched.submit(1);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(sched.shrink(*job, {static_cast<net::NodeId>(99)}).code(),
            StatusCode::invalid_argument);
}

TEST(Scheduler, BackgroundTenantsHoldUtilization) {
  des::Simulation sim;
  SchedulerConfig cfg;
  cfg.total_nodes = 40;
  cfg.background_utilization = 0.5;
  Scheduler sched(sim, cfg);
  // Immediately after construction the tenants occupy ~half the cluster.
  EXPECT_LE(sched.free_nodes(), 25u);
  EXPECT_GE(sched.free_nodes(), 10u);
  // Churn keeps it around the target over time.
  sim.run_until(seconds(200));
  EXPECT_LE(sched.free_nodes(), 28u);
  EXPECT_GE(sched.free_nodes(), 8u);
}

TEST(Scheduler, ChurnIsDeterministic) {
  auto run = [] {
    des::Simulation sim;
    SchedulerConfig cfg;
    cfg.total_nodes = 32;
    cfg.background_utilization = 0.6;
    cfg.seed = 9;
    Scheduler sched(sim, cfg);
    sim.run_until(seconds(100));
    return sched.free_nodes();
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------- staging-area integration

TEST(SchedulerIntegration, ScheduledGrowLaunchesDaemonOnGrantedNode) {
  des::Simulation sim;
  net::Network net(sim);
  Scheduler sched(sim, SchedulerConfig{.total_nodes = 8});
  auto job = sched.submit(2);
  ASSERT_TRUE(job.has_value());

  ServerConfig scfg;
  scfg.init_cost = des::milliseconds(10);
  LaunchModel instant{des::milliseconds(10), 0.0, des::milliseconds(10)};
  StagingArea area(net, scfg, instant, 5);
  area.attach_scheduler(sched, *job);
  const auto& held = *sched.nodes_of(*job);
  area.launch_initial(2, held[0]);  // founding daemons on the job's nodes
  sim.run_until(seconds(2));
  ASSERT_EQ(area.alive_count(), 2u);

  bool joined = false;
  net::NodeId new_node = 0;
  ASSERT_TRUE(area.launch_one_scheduled([&](Server& s) {
                    joined = true;
                    new_node = s.process().node();
                  })
                  .ok());
  sim.run_until(seconds(20));
  ASSERT_TRUE(joined);
  EXPECT_EQ(area.alive_count(), 3u);
  EXPECT_EQ(sched.nodes_of(*job)->size(), 3u);
  EXPECT_EQ(sched.free_nodes(), 5u);
  // The daemon really runs on a node the scheduler granted.
  const auto& nodes = *sched.nodes_of(*job);
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), new_node), nodes.end());
}

TEST(SchedulerIntegration, GrowDeniedUnderScarcity) {
  des::Simulation sim;
  net::Network net(sim);
  Scheduler sched(sim, SchedulerConfig{.total_nodes = 2});
  auto job = sched.submit(2);  // the whole cluster
  ASSERT_TRUE(job.has_value());
  StagingArea area(net, ServerConfig{}, LaunchModel{}, 5);
  area.attach_scheduler(sched, *job);
  EXPECT_EQ(area.launch_one_scheduled().code(), StatusCode::unavailable);
}

TEST(SchedulerIntegration, ReleaseReturnsNodeAfterLeave) {
  des::Simulation sim;
  net::Network net(sim);
  Scheduler sched(sim, SchedulerConfig{.total_nodes = 8});
  auto job = sched.submit(3);
  ASSERT_TRUE(job.has_value());

  ServerConfig scfg;
  scfg.init_cost = des::milliseconds(10);
  LaunchModel instant{des::milliseconds(10), 0.0, des::milliseconds(10)};
  StagingArea area(net, scfg, instant, 6);
  area.attach_scheduler(sched, *job);
  area.launch_initial(3, sched.nodes_of(*job)->front());
  sim.run_until(seconds(2));
  ASSERT_EQ(area.alive_count(), 3u);
  EXPECT_EQ(sched.free_nodes(), 5u);

  auto& tool_proc = net.create_process(100);
  rpc::Engine tool(tool_proc, net::Profile::mona());
  bool released = false;
  tool_proc.spawn("admin", [&] {
    Server& victim = *area.servers().back();
    ASSERT_TRUE(area.release_scheduled(tool, victim).ok());
    released = true;
  });
  sim.run_until(seconds(30));
  ASSERT_TRUE(released);
  EXPECT_EQ(area.alive_count(), 2u);
  EXPECT_EQ(sched.free_nodes(), 6u);  // the node came back
  EXPECT_EQ(sched.nodes_of(*job)->size(), 2u);
}

TEST(Scheduler, FairSharesCapGrow) {
  des::Simulation sim;
  Scheduler sched(sim, SchedulerConfig{.total_nodes = 16});
  auto a = sched.submit(2);
  auto b = sched.submit(2);
  ASSERT_TRUE(a.has_value() && b.has_value());

  // Off by default: a can grab far past an even split.
  auto g = sched.grow(*a, 10);
  ASSERT_TRUE(g.has_value());
  ASSERT_TRUE(sched.shrink(*a, *g).ok());

  sched.enable_fair_shares();
  sched.set_job_weight(*a, 3);
  sched.set_job_weight(*b, 1);
  // Shares: a = 16*3/4 = 12, b = 16*1/4 = 4.
  EXPECT_FALSE(sched.grow(*a, 11).has_value());  // 2 + 11 > 12
  EXPECT_TRUE(sched.grow(*a, 10).has_value());
  EXPECT_FALSE(sched.grow(*b, 3).has_value());   // 2 + 3 > 4
  EXPECT_TRUE(sched.grow(*b, 2).has_value());
  // Weights are forgotten with the job; the survivor's share expands.
  ASSERT_TRUE(sched.complete(*a).ok());
  EXPECT_TRUE(sched.grow(*b, 10).has_value());  // share is now all 16
}

}  // namespace
}  // namespace colza::sched

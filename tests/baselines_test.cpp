// Tests for the Fig 8 baselines: mini-Damaris (static world, divisibility
// constraint, per-client signal semantics) and mini-DataSpaces (put/exec/drop
// over a static staging world).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/damaris.hpp"
#include "baselines/dataspaces.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

namespace colza::baselines {
namespace {

using des::seconds;

vis::UniformGrid small_block(float offset_z) {
  vis::UniformGrid g;
  g.dims = {8, 8, 8};
  g.origin = {0, 0, offset_z};
  std::vector<float> f(g.point_count());
  for (std::uint32_t k = 0; k < 8; ++k)
    for (std::uint32_t j = 0; j < 8; ++j)
      for (std::uint32_t i = 0; i < 8; ++i)
        f[g.point_index(i, j, k)] =
            (g.point(i, j, k) - vis::Vec3{4, 4, offset_z + 4}).norm();
  g.point_data.add(vis::DataArray::make<float>("dist", f));
  return g;
}

catalyst::PipelineScript tiny_script() {
  catalyst::PipelineScript s;
  s.field = "dist";
  s.iso_values = {3.0f};
  s.image_width = s.image_height = 24;
  s.range_hi = 8.0f;
  return s;
}

TEST(Damaris, DivisibilityConstraintEnforced) {
  des::Simulation sim;
  net::Network net(sim);
  Damaris::Config cfg;
  cfg.clients = 5;
  cfg.servers = 2;  // 5 % 2 != 0
  cfg.script = tiny_script();
  EXPECT_THROW(Damaris(net, cfg), std::invalid_argument);
}

TEST(Damaris, RunsIterationsAndRecordsPluginTimes) {
  des::Simulation sim;
  net::Network net(sim);
  Damaris::Config cfg;
  cfg.clients = 4;
  cfg.servers = 2;
  cfg.script = tiny_script();
  Damaris damaris(net, cfg);
  constexpr int kIters = 3;
  damaris.run(kIters, [&](int client, std::uint64_t iter) {
    ASSERT_TRUE(
        damaris.write(client, iter, small_block(static_cast<float>(client) * 7))
            .ok());
    ASSERT_TRUE(damaris.signal(client, iter, 1).ok());
  });
  sim.run();
  ASSERT_EQ(damaris.records().size(), 2u);
  for (const auto& per_server : damaris.records()) {
    ASSERT_EQ(per_server.size(), static_cast<std::size_t>(kIters));
    for (const auto& r : per_server) EXPECT_GT(r.plugin_time, 0u);
  }
}

TEST(Damaris, EarlySignalersEnterPluginEarlierButFinishTogether) {
  // The architectural drawback from the paper: a server whose clients signal
  // early enters the plugin early and waits inside the first collective.
  des::Simulation sim;
  net::Network net(sim);
  Damaris::Config cfg;
  cfg.clients = 4;
  cfg.servers = 2;
  cfg.script = tiny_script();
  Damaris damaris(net, cfg);
  damaris.run(1, [&](int client, std::uint64_t iter) {
    // Clients of server 1 (ranks 2,3) lag by 2 virtual seconds.
    if (client >= 2) sim.sleep_for(seconds(2));
    ASSERT_TRUE(damaris.write(client, iter, small_block(0)).ok());
    ASSERT_TRUE(damaris.signal(client, iter, 1).ok());
  });
  sim.run();
  const auto& s0 = damaris.records()[0][0];
  const auto& s1 = damaris.records()[1][0];
  EXPECT_LT(s0.entered_at, s1.entered_at);  // server 0 entered early...
  EXPECT_GT(s0.plugin_time,
            s1.plugin_time);  // ...and burned the difference waiting
}

TEST(Damaris, ServerOfClientMapping) {
  des::Simulation sim;
  net::Network net(sim);
  Damaris::Config cfg;
  cfg.clients = 8;
  cfg.servers = 2;
  cfg.script = tiny_script();
  Damaris damaris(net, cfg);
  EXPECT_EQ(damaris.server_of_client(0), 8);
  EXPECT_EQ(damaris.server_of_client(3), 8);
  EXPECT_EQ(damaris.server_of_client(4), 9);
  EXPECT_EQ(damaris.server_of_client(7), 9);
}

TEST(DataSpaces, PutExecDrop) {
  des::Simulation sim;
  net::Network net(sim);
  DataSpaces::Config cfg;
  cfg.servers = 2;
  cfg.script = tiny_script();
  DataSpaces ds(net, cfg, /*base_node=*/10);
  auto& client_proc = net.create_process(0);
  rpc::Engine client(client_proc, net::Profile::mona());
  bool done = false;
  client_proc.spawn("client", [&] {
    for (std::uint64_t b = 0; b < 4; ++b) {
      auto bytes = vis::serialize_dataset(
          vis::DataSet{small_block(static_cast<float>(b) * 7)});
      ASSERT_TRUE(ds.put(client, "field", 1, b, bytes).ok());
    }
    ASSERT_TRUE(ds.exec(client, "field", 1).ok());
    ASSERT_TRUE(ds.drop(client, "field", 1).ok());
    // A second exec on the dropped version sees zero blocks but succeeds.
    ASSERT_TRUE(ds.exec(client, "field", 1).ok());
    done = true;
  });
  sim.run();
  ASSERT_TRUE(done);
  // Both servers executed twice; the first run had 2 blocks each.
  for (const auto& per_server : ds.records()) {
    ASSERT_EQ(per_server.size(), 2u);
    EXPECT_EQ(per_server[0].blocks, 2u);
    EXPECT_EQ(per_server[1].blocks, 0u);
    EXPECT_GT(per_server[0].exec_time, 0u);
  }
}

TEST(DataSpaces, BlocksRouteByBlockId) {
  des::Simulation sim;
  net::Network net(sim);
  DataSpaces::Config cfg;
  cfg.servers = 3;
  cfg.script = tiny_script();
  DataSpaces ds(net, cfg, 10);
  EXPECT_EQ(ds.server_addresses().size(), 3u);
  auto& client_proc = net.create_process(0);
  rpc::Engine client(client_proc, net::Profile::mona());
  client_proc.spawn("client", [&] {
    auto bytes =
        vis::serialize_dataset(vis::DataSet{small_block(0)});
    for (std::uint64_t b = 0; b < 6; ++b) {
      ASSERT_TRUE(ds.put(client, "x", 1, b, bytes).ok());
    }
    ASSERT_TRUE(ds.exec(client, "x", 1).ok());
  });
  sim.run();
  for (const auto& per_server : ds.records()) {
    ASSERT_EQ(per_server.size(), 1u);
    EXPECT_EQ(per_server[0].blocks, 2u);  // 6 blocks over 3 servers
  }
}

}  // namespace
}  // namespace colza::baselines

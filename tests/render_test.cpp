// Tests for the software renderer: framebuffers, color maps, cameras,
// rasterization, and volume raycasting.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "render/render.hpp"
#include "vis/filters.hpp"

namespace colza::render {
namespace {

using vis::Vec3;

vis::UniformGrid sphere_grid(std::uint32_t n, Vec3 center) {
  vis::UniformGrid g;
  g.dims = {n, n, n};
  std::vector<float> f(g.point_count());
  for (std::uint32_t k = 0; k < n; ++k)
    for (std::uint32_t j = 0; j < n; ++j)
      for (std::uint32_t i = 0; i < n; ++i)
        f[g.point_index(i, j, k)] = (g.point(i, j, k) - center).norm();
  g.point_data.add(vis::DataArray::make<float>("dist", f));
  return g;
}

int active_pixels(const FrameBuffer& fb) {
  int n = 0;
  for (std::size_t p = 0; p < fb.pixel_count(); ++p)
    n += fb.rgba[p * 4 + 3] > 0 ? 1 : 0;
  return n;
}

TEST(FrameBuffer, ResizeAndClear) {
  FrameBuffer fb(8, 4);
  EXPECT_EQ(fb.pixel_count(), 32u);
  EXPECT_EQ(fb.rgba.size(), 128u);
  fb.rgba[5] = 0.5f;
  fb.depth[3] = 0.2f;
  fb.clear();
  EXPECT_EQ(fb.rgba[5], 0.0f);
  EXPECT_EQ(fb.depth[3], 1.0f);
  EXPECT_THROW(FrameBuffer(0, 5), std::invalid_argument);
}

TEST(ColorMap, EndpointsAndClamping) {
  ColorMap cm{ColorMapKind::grayscale, 0.0f, 10.0f};
  EXPECT_EQ(cm.map(0.0f), (Vec3{0, 0, 0}));
  EXPECT_EQ(cm.map(10.0f), (Vec3{1, 1, 1}));
  EXPECT_EQ(cm.map(-5.0f), (Vec3{0, 0, 0}));
  EXPECT_EQ(cm.map(20.0f), (Vec3{1, 1, 1}));
}

TEST(ColorMap, CoolWarmDiverges) {
  ColorMap cm{ColorMapKind::cool_warm, 0.0f, 1.0f};
  const Vec3 lo = cm.map(0.0f);
  const Vec3 mid = cm.map(0.5f);
  const Vec3 hi = cm.map(1.0f);
  EXPECT_GT(lo.z, lo.x);  // blue end
  EXPECT_GT(hi.x, hi.z);  // red end
  EXPECT_GT(mid.x, 0.8f);  // near-white middle
}

TEST(ColorMap, ViridisMonotoneBrightness) {
  ColorMap cm{ColorMapKind::viridis, 0.0f, 1.0f};
  float prev = -1;
  for (int i = 0; i <= 10; ++i) {
    const Vec3 c = cm.map(static_cast<float>(i) / 10.0f);
    const float luma = 0.2f * c.x + 0.7f * c.y + 0.1f * c.z;
    EXPECT_GE(luma, prev - 0.02f);
    prev = luma;
  }
}

TEST(Camera, FramingContainsBounds) {
  vis::Aabb box;
  box.extend({0, 0, 0});
  box.extend({10, 10, 10});
  Camera cam = Camera::framing(box);
  EXPECT_GT((cam.eye - box.center()).norm(), 5.0f);
  EXPECT_EQ(cam.target, box.center());
  EXPECT_GT(cam.far_plane, cam.near_plane);
}

TEST(Rasterize, SingleTriangleCoversExpectedPixels) {
  FrameBuffer fb(64, 64);
  vis::TriangleMesh m;
  m.points = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  m.normals = {{0, 0, 1}, {0, 0, 1}, {0, 0, 1}};
  m.scalars = {0.5f, 0.5f, 0.5f};
  m.triangles = {0, 1, 2};
  Camera cam;
  cam.eye = {0, 0, 4};
  cam.target = {0, 0, 0};
  rasterize(fb, m, cam, ColorMap{ColorMapKind::grayscale, 0, 1});
  const int n = active_pixels(fb);
  EXPECT_GT(n, 200);          // triangle visibly covers the screen center
  EXPECT_LT(n, 64 * 64 / 2);  // but not the whole screen
}

TEST(Rasterize, DepthTestKeepsNearTriangle) {
  FrameBuffer fb(32, 32);
  vis::TriangleMesh far_tri, near_tri;
  for (auto* m : {&far_tri, &near_tri}) {
    m->normals = {{0, 0, 1}, {0, 0, 1}, {0, 0, 1}};
    m->triangles = {0, 1, 2};
  }
  far_tri.points = {{-2, -2, 0}, {2, -2, 0}, {0, 2, 0}};
  far_tri.scalars = {0.0f, 0.0f, 0.0f};  // dark
  near_tri.points = {{-2, -2, 2}, {2, -2, 2}, {0, 2, 2}};
  near_tri.scalars = {1.0f, 1.0f, 1.0f};  // bright
  Camera cam;
  cam.eye = {0, 0, 6};
  cam.target = {0, 0, 0};
  const ColorMap cm{ColorMapKind::grayscale, 0, 1};
  // Draw far first, then near: near must win; then the reverse order must
  // produce the identical image (z-buffer, not painter's algorithm).
  rasterize(fb, far_tri, cam, cm);
  rasterize(fb, near_tri, cam, cm);
  const auto hash1 = fb.content_hash();
  const std::size_t center =
      (16u * 32u + 16u) * 4u;
  EXPECT_GT(fb.rgba[center], 0.5f);  // bright (near) triangle visible
  fb.clear();
  rasterize(fb, near_tri, cam, cm);
  rasterize(fb, far_tri, cam, cm);
  EXPECT_EQ(fb.content_hash(), hash1);
}

TEST(Rasterize, BehindCameraCulled) {
  FrameBuffer fb(32, 32);
  vis::TriangleMesh m;
  m.points = {{-1, -1, 10}, {1, -1, 10}, {0, 1, 10}};  // behind the eye
  m.triangles = {0, 1, 2};
  Camera cam;
  cam.eye = {0, 0, 4};
  cam.target = {0, 0, 0};
  rasterize(fb, m, cam, ColorMap{});
  EXPECT_EQ(active_pixels(fb), 0);
}

TEST(Rasterize, IsosurfaceSphereLooksRound) {
  vis::UniformGrid g = sphere_grid(17, {8, 8, 8});
  vis::TriangleMesh m = vis::isosurface(g, "dist", 5.0f);
  FrameBuffer fb(64, 64);
  Camera cam = Camera::framing(m.bounds());
  rasterize(fb, m, cam, ColorMap{ColorMapKind::viridis, 0, 8});
  const int n = active_pixels(fb);
  EXPECT_GT(n, 300);
  // Depth buffer must vary across the sphere (it is curved).
  float dmin = 1, dmax = 0;
  for (std::size_t p = 0; p < fb.pixel_count(); ++p) {
    if (fb.rgba[p * 4 + 3] > 0) {
      dmin = std::min(dmin, fb.depth[p]);
      dmax = std::max(dmax, fb.depth[p]);
    }
  }
  EXPECT_GT(dmax - dmin, 0.01f);
}

TEST(Raycast, VolumeProducesActivePixelsAndDepth) {
  vis::UniformGrid g = sphere_grid(17, {8, 8, 8});
  // Invert so the sphere interior has high values.
  auto vals = g.point_data.find("dist")->as_mutable<float>();
  for (auto& v : vals) v = std::max(0.0f, 8.0f - v);
  FrameBuffer fb(48, 48);
  Camera cam = Camera::framing(g.bounds());
  TransferFunction tf;
  tf.color = ColorMap{ColorMapKind::cool_warm, 0.0f, 8.0f};
  tf.opacity_scale = 0.2f;
  raycast(fb, g, "dist", cam, tf);
  const int n = active_pixels(fb);
  EXPECT_GT(n, 100);
  // Central pixel should have accumulated noticeable opacity and a depth
  // strictly in front of the background.
  const std::size_t c = (24u * 48u + 24u);
  EXPECT_GT(fb.rgba[c * 4 + 3], 0.2f);
  EXPECT_LT(fb.depth[c], 1.0f);
}

TEST(Raycast, EmptyVolumeLeavesBackground) {
  vis::UniformGrid g;
  g.dims = {8, 8, 8};
  g.point_data.add(vis::DataArray::make<float>(
      "f", std::vector<float>(g.point_count(), 0.0f)));
  FrameBuffer fb(16, 16);
  Camera cam = Camera::framing(g.bounds());
  TransferFunction tf;
  tf.color = ColorMap{ColorMapKind::grayscale, 0, 1};
  raycast(fb, g, "f", cam, tf);
  EXPECT_EQ(active_pixels(fb), 0);
}

TEST(FrameBuffer, PpmRoundTripOnDisk) {
  FrameBuffer fb(8, 8);
  fb.rgba[0] = 1.0f;
  fb.rgba[3] = 1.0f;
  const std::string path = "/tmp/colza_render_test.ppm";
  fb.write_ppm(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(std::string(magic), "P6");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(FrameBuffer, ContentHashDetectsChanges) {
  FrameBuffer a(16, 16), b(16, 16);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.rgba[40] = 0.7f;
  EXPECT_NE(a.content_hash(), b.content_hash());
}

}  // namespace
}  // namespace colza::render

// Tests for the image compositor: sparse encoding, pixel operators, and all
// three strategies across communicator sizes, over MoNA-backed communicators
// running in the simulated fabric.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "des/simulation.hpp"
#include "icet/icet.hpp"
#include "mona/mona.hpp"
#include "net/network.hpp"
#include "vis/communicator.hpp"

namespace colza::icet {
namespace {

// Paints `fb` so rank r owns a horizontal band: pixels in the band get
// color = (r+1)/size and depth = 0.5; everything else stays background.
void paint_band(render::FrameBuffer& fb, int rank, int size) {
  const int rows = fb.height / size;
  const int y0 = rank * rows;
  const int y1 = rank == size - 1 ? fb.height : y0 + rows;
  for (int y = y0; y < y1; ++y) {
    for (int x = 0; x < fb.width; ++x) {
      const std::size_t p = static_cast<std::size_t>(y) *
                                static_cast<std::size_t>(fb.width) +
                            static_cast<std::size_t>(x);
      const float v = static_cast<float>(rank + 1) / static_cast<float>(size);
      fb.rgba[p * 4 + 0] = v;
      fb.rgba[p * 4 + 3] = 1.0f;
      fb.depth[p] = 0.5f;
    }
  }
}

// Expected final image for paint_band: every row has its band's color.
bool check_bands(const render::FrameBuffer& fb, int size) {
  const int rows = fb.height / size;
  for (int y = 0; y < fb.height; ++y) {
    int rank = rows == 0 ? 0 : std::min(y / rows, size - 1);
    const float v = static_cast<float>(rank + 1) / static_cast<float>(size);
    for (int x = 0; x < fb.width; ++x) {
      const std::size_t p = static_cast<std::size_t>(y) *
                                static_cast<std::size_t>(fb.width) +
                            static_cast<std::size_t>(x);
      if (std::abs(fb.rgba[p * 4] - v) > 1e-5f) return false;
      if (fb.rgba[p * 4 + 3] != 1.0f) return false;
      if (fb.depth[p] != 0.5f) return false;
    }
  }
  return true;
}

// --------------------------------------------------------------- encoding

TEST(SparseEncoding, RoundTripPreservesActivePixels) {
  render::FrameBuffer fb(16, 2);
  // Activate pixels 3..6 and 20..21.
  for (std::size_t p : {3u, 4u, 5u, 6u, 20u, 21u}) {
    fb.rgba[p * 4 + 0] = 0.25f * static_cast<float>(p % 4);
    fb.rgba[p * 4 + 3] = 1.0f;
    fb.depth[p] = 0.1f * static_cast<float>(p % 8);
  }
  auto enc = encode_sparse(fb, 0, fb.pixel_count());
  render::FrameBuffer out(16, 2);
  composite_sparse(out, 0, enc, CompositeOp::closest_depth);
  for (std::size_t p = 0; p < fb.pixel_count(); ++p) {
    EXPECT_EQ(out.rgba[p * 4], fb.rgba[p * 4]) << p;
    EXPECT_EQ(out.depth[p], fb.depth[p]) << p;
  }
}

TEST(SparseEncoding, EmptyImageEncodesTiny) {
  render::FrameBuffer fb(64, 64);
  auto enc = encode_sparse(fb, 0, fb.pixel_count());
  EXPECT_LE(enc.size(), 16u);  // one skip/count pair
}

TEST(SparseEncoding, SizeScalesWithActivePixels) {
  render::FrameBuffer fb(64, 64);
  for (std::size_t p = 0; p < 100; ++p) {
    fb.rgba[p * 4 + 3] = 1.0f;
  }
  const auto small = encode_sparse(fb, 0, fb.pixel_count()).size();
  for (std::size_t p = 0; p < 2000; ++p) {
    fb.rgba[p * 4 + 3] = 1.0f;
  }
  const auto big = encode_sparse(fb, 0, fb.pixel_count()).size();
  EXPECT_GT(big, 10 * small);
}

// --------------------------------------------------------------- operators

TEST(Operators, ClosestDepthKeepsNearer) {
  render::FrameBuffer a(2, 1), b(2, 1);
  a.rgba = {1, 0, 0, 1, 0, 0, 0, 0};
  a.depth = {0.3f, 1.0f};
  b.rgba = {0, 1, 0, 1, 0, 1, 0, 1};
  b.depth = {0.6f, 0.4f};
  auto enc = encode_sparse(b, 0, 2);
  composite_sparse(a, 0, enc, CompositeOp::closest_depth);
  EXPECT_EQ(a.rgba[0], 1.0f);  // a was nearer at pixel 0
  EXPECT_EQ(a.depth[0], 0.3f);
  EXPECT_EQ(a.rgba[5], 1.0f);  // b was nearer at pixel 1
  EXPECT_EQ(a.depth[1], 0.4f);
}

TEST(Operators, OverBlendsByDepthOrder) {
  render::FrameBuffer dst(1, 1), src(1, 1);
  // dst: half-transparent red at depth 0.5 (premultiplied).
  dst.rgba = {0.5f, 0, 0, 0.5f};
  dst.depth = {0.5f};
  // src: half-transparent green at depth 0.2 (in front).
  src.rgba = {0, 0.5f, 0, 0.5f};
  src.depth = {0.2f};
  auto enc = encode_sparse(src, 0, 1);
  composite_sparse(dst, 0, enc, CompositeOp::over);
  // Green in front: out = green + (1-0.5)*red.
  EXPECT_NEAR(dst.rgba[0], 0.25f, 1e-5f);
  EXPECT_NEAR(dst.rgba[1], 0.5f, 1e-5f);
  EXPECT_NEAR(dst.rgba[3], 0.75f, 1e-5f);
  EXPECT_EQ(dst.depth[0], 0.2f);
}

TEST(Operators, OverIsOrderIndependentGivenDepths) {
  render::FrameBuffer a1(1, 1), a2(1, 1), near(1, 1), far(1, 1);
  near.rgba = {0, 0.5f, 0, 0.5f};
  near.depth = {0.2f};
  far.rgba = {0.5f, 0, 0, 0.5f};
  far.depth = {0.8f};
  auto enc_near = encode_sparse(near, 0, 1);
  auto enc_far = encode_sparse(far, 0, 1);
  composite_sparse(a1, 0, enc_near, CompositeOp::over);
  composite_sparse(a1, 0, enc_far, CompositeOp::over);
  composite_sparse(a2, 0, enc_far, CompositeOp::over);
  composite_sparse(a2, 0, enc_near, CompositeOp::over);
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(a1.rgba[c], a2.rgba[c], 1e-4f);
}

// --------------------------------------------------------------- strategies

class IcetStrategy
    : public ::testing::TestWithParam<std::tuple<Strategy, int>> {};

INSTANTIATE_TEST_SUITE_P(
    All, IcetStrategy,
    ::testing::Combine(::testing::Values(Strategy::tree, Strategy::binary_swap,
                                         Strategy::direct),
                       ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16)),
    [](const auto& info) {
      const char* s = std::get<0>(info.param) == Strategy::tree ? "tree"
                      : std::get<0>(info.param) == Strategy::binary_swap
                          ? "bswap"
                          : "direct";
      return std::string(s) + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST_P(IcetStrategy, BandsCompositeToFullImage) {
  const auto [strategy, n] = GetParam();
  des::Simulation sim;
  net::Network net(sim);
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < n; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i / 4));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p));
    addrs.push_back(p.id());
  }
  bool root_ok = false;
  std::vector<std::unique_ptr<vis::MonaCommunicator>> comms(
      static_cast<std::size_t>(n));
  std::vector<render::FrameBuffer> fbs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& fb = fbs[static_cast<std::size_t>(i)];
    fb.resize(32, 32);
    paint_band(fb, i, n);
    comms[static_cast<std::size_t>(i)] = std::make_unique<vis::MonaCommunicator>(
        insts[static_cast<std::size_t>(i)]->comm_create(addrs));
    procs[static_cast<std::size_t>(i)]->spawn(
        "compose" + std::to_string(i), [&, i, strategy = strategy, n = n] {
          auto vt = make_vtable(*comms[static_cast<std::size_t>(i)]);
          auto r = composite(fbs[static_cast<std::size_t>(i)], vt, strategy,
                             CompositeOp::closest_depth);
          ASSERT_TRUE(r.has_value()) << r.status().to_string();
          if (i == 0) root_ok = check_bands(fbs[0], n);
        });
  }
  sim.run();
  EXPECT_TRUE(root_ok);
}

TEST(Icet, StrategiesProduceIdenticalImages) {
  auto run = [](Strategy strategy) {
    des::Simulation sim;
    net::Network net(sim);
    constexpr int n = 6;
    std::vector<std::unique_ptr<mona::Instance>> insts;
    std::vector<net::Process*> procs;
    std::vector<net::ProcId> addrs;
    for (int i = 0; i < n; ++i) {
      auto& p = net.create_process(static_cast<net::NodeId>(i));
      procs.push_back(&p);
      insts.push_back(std::make_unique<mona::Instance>(p));
      addrs.push_back(p.id());
    }
    std::uint64_t hash = 0;
    std::vector<std::unique_ptr<vis::MonaCommunicator>> comms(n);
    std::vector<render::FrameBuffer> fbs(n);
    for (int i = 0; i < n; ++i) {
      fbs[static_cast<std::size_t>(i)].resize(24, 24);
      // Overlapping content: rank i paints a square at depth (i+1)/10.
      auto& fb = fbs[static_cast<std::size_t>(i)];
      for (int y = i; y < 24 - i; ++y) {
        for (int x = i; x < 24 - i; ++x) {
          const std::size_t p =
              static_cast<std::size_t>(y) * 24 + static_cast<std::size_t>(x);
          fb.rgba[p * 4 + 0] = static_cast<float>(i + 1) / n;
          fb.rgba[p * 4 + 3] = 1.0f;
          fb.depth[p] = static_cast<float>(i + 1) / 10.0f;
        }
      }
      comms[static_cast<std::size_t>(i)] =
          std::make_unique<vis::MonaCommunicator>(
              insts[static_cast<std::size_t>(i)]->comm_create(addrs));
      procs[static_cast<std::size_t>(i)]->spawn("c", [&, i, strategy] {
        auto vt = make_vtable(*comms[static_cast<std::size_t>(i)]);
        auto r = composite(fbs[static_cast<std::size_t>(i)], vt, strategy,
                           CompositeOp::closest_depth);
        ASSERT_TRUE(r.has_value());
        if (i == 0) hash = fbs[0].content_hash();
      });
    }
    sim.run();
    return hash;
  };
  const auto tree = run(Strategy::tree);
  EXPECT_EQ(tree, run(Strategy::binary_swap));
  EXPECT_EQ(tree, run(Strategy::direct));
}

TEST(Icet, SingleRankIsNoop) {
  des::Simulation sim;
  net::Network net(sim);
  auto& p = net.create_process(0);
  mona::Instance inst(p);
  auto comm = std::make_unique<vis::MonaCommunicator>(
      inst.comm_create({p.id()}));
  render::FrameBuffer fb(8, 8);
  fb.rgba[0] = 0.5f;
  const auto before = fb.content_hash();
  p.spawn("c", [&] {
    auto vt = make_vtable(*comm);
    auto r = composite(fb, vt, Strategy::binary_swap,
                       CompositeOp::closest_depth);
    ASSERT_TRUE(r.has_value());
  });
  sim.run();
  EXPECT_EQ(fb.content_hash(), before);
}

TEST(Icet, SparseImagesSendFewBytes) {
  // Mostly-empty framebuffers must produce small messages (active-pixel
  // encoding at work).
  des::Simulation sim;
  net::Network net(sim);
  constexpr int n = 4;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::Process*> procs;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < n; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p));
    addrs.push_back(p.id());
  }
  std::uint64_t total_sent = 0;
  std::vector<std::unique_ptr<vis::MonaCommunicator>> comms(n);
  std::vector<render::FrameBuffer> fbs(n);
  for (int i = 0; i < n; ++i) {
    fbs[static_cast<std::size_t>(i)].resize(128, 128);  // 16K pixels, 1 active
    auto& fb = fbs[static_cast<std::size_t>(i)];
    fb.rgba[static_cast<std::size_t>(i) * 4 + 3] = 1.0f;
    comms[static_cast<std::size_t>(i)] =
        std::make_unique<vis::MonaCommunicator>(
            insts[static_cast<std::size_t>(i)]->comm_create(addrs));
    procs[static_cast<std::size_t>(i)]->spawn("c", [&, i] {
      auto vt = make_vtable(*comms[static_cast<std::size_t>(i)]);
      auto r = composite(fbs[static_cast<std::size_t>(i)], vt, Strategy::tree,
                         CompositeOp::closest_depth);
      ASSERT_TRUE(r.has_value());
      total_sent += r->bytes_sent;
    });
  }
  sim.run();
  // Raw would be 16K pixels * 20 B * 3 senders ~= 1 MB; sparse must be tiny.
  EXPECT_LT(total_sent, 4096u);
}


TEST(Icet, BinarySwapNonPow2RootOutsideGroup) {
  // size 5 => pof2 group {0..3}; root 4 exercises the composite-at-0 then
  // forward-to-root remap path.
  des::Simulation sim;
  net::Network net(sim);
  constexpr int n = 5;
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < n; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p));
    addrs.push_back(p.id());
  }
  std::vector<std::unique_ptr<vis::MonaCommunicator>> comms(n);
  std::vector<render::FrameBuffer> fbs(n);
  bool root_ok = false;
  for (int i = 0; i < n; ++i) {
    fbs[static_cast<std::size_t>(i)].resize(16, 16);
    paint_band(fbs[static_cast<std::size_t>(i)], i, n);
    comms[static_cast<std::size_t>(i)] =
        std::make_unique<vis::MonaCommunicator>(
            insts[static_cast<std::size_t>(i)]->comm_create(addrs));
    procs[static_cast<std::size_t>(i)]->spawn("c", [&, i] {
      auto vt = make_vtable(*comms[static_cast<std::size_t>(i)]);
      auto r = composite(fbs[static_cast<std::size_t>(i)], vt,
                         Strategy::binary_swap, CompositeOp::closest_depth,
                         /*root=*/4);
      ASSERT_TRUE(r.has_value()) << r.status().to_string();
      if (i == 4) root_ok = check_bands(fbs[4], n);
    });
  }
  sim.run();
  EXPECT_TRUE(root_ok);
}

}  // namespace
}  // namespace colza::icet

// Tests for the Catalyst-style pipeline layer: script parsing, presets, and
// distributed execution over MoNA- and MPI-backed communicators (the
// dependency-injection equivalence at the heart of the paper).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "catalyst/catalyst.hpp"
#include "des/simulation.hpp"
#include "mona/mona.hpp"
#include "net/network.hpp"
#include "simmpi/simmpi.hpp"
#include "vis/communicator.hpp"

namespace colza::catalyst {
namespace {

vis::UniformGrid sphere_block(std::uint32_t n, vis::Vec3 origin,
                              vis::Vec3 center) {
  vis::UniformGrid g;
  g.dims = {n, n, n};
  g.origin = origin;
  std::vector<float> f(g.point_count());
  for (std::uint32_t k = 0; k < n; ++k)
    for (std::uint32_t j = 0; j < n; ++j)
      for (std::uint32_t i = 0; i < n; ++i)
        f[g.point_index(i, j, k)] = (g.point(i, j, k) - center).norm();
  g.point_data.add(vis::DataArray::make<float>("dist", f));
  return g;
}

TEST(PipelineScript, FromJsonOverridesDefaults) {
  auto cfg = json::parse(R"({
    "name": "test", "mode": "volume", "field": "rho",
    "iso_values": [0.1, 0.2], "clip": true,
    "clip_normal": [0, 1, 0],
    "width": 128, "height": 64,
    "strategy": "tree", "colormap": "grayscale",
    "range_lo": -1, "range_hi": 2, "opacity": 0.5,
    "resample_dims": [16, 16, 16]
  })");
  PipelineScript s = PipelineScript::from_json(cfg);
  EXPECT_EQ(s.name, "test");
  EXPECT_EQ(s.mode, RenderMode::volume);
  EXPECT_EQ(s.field, "rho");
  EXPECT_EQ(s.iso_values, (std::vector<float>{0.1f, 0.2f}));
  EXPECT_TRUE(s.clip);
  EXPECT_EQ(s.clip_normal, (vis::Vec3{0, 1, 0}));
  EXPECT_EQ(s.image_width, 128);
  EXPECT_EQ(s.image_height, 64);
  EXPECT_EQ(s.strategy, icet::Strategy::tree);
  EXPECT_EQ(s.colormap, render::ColorMapKind::grayscale);
  EXPECT_EQ(s.range_lo, -1.0f);
  EXPECT_EQ(s.range_hi, 2.0f);
  EXPECT_EQ(s.opacity_scale, 0.5f);
  EXPECT_EQ(s.resample_dims[0], 16u);
}

TEST(PipelineScript, EmptyConfigKeepsDefaults) {
  PipelineScript s = PipelineScript::from_json(json::parse(""));
  EXPECT_EQ(s.mode, RenderMode::isosurface);
  EXPECT_EQ(s.image_width, 256);
}

TEST(PipelineScript, PresetsMatchPaperPipelines) {
  const auto gs = PipelineScript::gray_scott();
  EXPECT_EQ(gs.iso_values.size(), 3u);  // multiple levels of isosurfaces
  EXPECT_TRUE(gs.clip);                 // combined with clipping (Fig 3a)
  const auto mb = PipelineScript::mandelbulb();
  EXPECT_EQ(mb.iso_values.size(), 1u);  // a single level of isosurface
  EXPECT_FALSE(mb.clip);
  const auto dwi = PipelineScript::dwi();
  EXPECT_EQ(dwi.mode, RenderMode::volume);  // volume rendering
}

// Runs the same pipeline over N ranks with MoNA communicators; returns the
// root image hash and stats.
struct RunResult {
  std::uint64_t image_hash = 0;
  std::size_t triangles = 0;
};

RunResult run_distributed(int n, const PipelineScript& script) {
  des::Simulation sim;
  net::Network net(sim);
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < n; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p));
    addrs.push_back(p.id());
  }
  RunResult result;
  std::vector<render::FrameBuffer> fbs(static_cast<std::size_t>(n));
  std::vector<std::shared_ptr<mona::Communicator>> comms;
  for (int i = 0; i < n; ++i) comms.push_back(insts[static_cast<std::size_t>(i)]->comm_create(addrs));
  for (int i = 0; i < n; ++i) {
    procs[static_cast<std::size_t>(i)]->spawn("rank", [&, i] {
      // Rank i owns a slab of a 16^3 sphere field along z.
      const vis::Vec3 center{8, 8, 8};
      vis::UniformGrid block = sphere_block(
          16, {0, 0, 0}, center);  // all ranks share domain; slab by origin
      block.origin.z = static_cast<float>(i) * 15.0f;
      // Recompute the field for the shifted block.
      auto vals = block.point_data.find("dist")->as_mutable<float>();
      for (std::uint32_t k = 0; k < 16; ++k)
        for (std::uint32_t j = 0; j < 16; ++j)
          for (std::uint32_t ii = 0; ii < 16; ++ii)
            vals[block.point_index(ii, j, k)] =
                (block.point(ii, j, k) - vis::Vec3{8, 8, 8 + 15.0f * static_cast<float>(i)}).norm();
      std::vector<vis::DataSet> blocks{vis::DataSet{block}};
      vis::MonaCommunicator comm(comms[static_cast<std::size_t>(i)]);
      auto r = execute(script, blocks, comm,
                       fbs[static_cast<std::size_t>(i)], 1);
      ASSERT_TRUE(r.has_value()) << r.status().to_string();
      if (i == 0) {
        result.image_hash = fbs[0].content_hash();
      }
      result.triangles += r->triangles_rendered;
    });
  }
  sim.run();
  return result;
}

TEST(CatalystExecute, DistributedIsosurfaceProducesImage) {
  PipelineScript s;
  s.field = "dist";
  s.iso_values = {5.0f};
  s.image_width = s.image_height = 64;
  s.range_hi = 10.0f;
  auto r = run_distributed(4, s);
  EXPECT_GT(r.triangles, 500u);
  render::FrameBuffer empty(64, 64);
  EXPECT_NE(r.image_hash, empty.content_hash());
}

TEST(CatalystExecute, SameImageForAnyStrategy) {
  PipelineScript s;
  s.field = "dist";
  s.iso_values = {5.0f};
  s.image_width = s.image_height = 48;
  s.range_hi = 10.0f;
  s.strategy = icet::Strategy::tree;
  const auto tree = run_distributed(3, s).image_hash;
  s.strategy = icet::Strategy::binary_swap;
  const auto bswap = run_distributed(3, s).image_hash;
  s.strategy = icet::Strategy::direct;
  const auto direct = run_distributed(3, s).image_hash;
  EXPECT_EQ(tree, bswap);
  EXPECT_EQ(tree, direct);
}

TEST(CatalystExecute, MonaAndMpiBackendsProduceSameImage) {
  // The paper's dependency-injection claim: the identical pipeline code run
  // over vtkMonaController or vtkMPIController must render the same image.
  PipelineScript s;
  s.field = "dist";
  s.iso_values = {4.0f};
  s.image_width = s.image_height = 32;
  s.range_hi = 10.0f;

  const auto mona_hash = run_distributed(2, s).image_hash;

  des::Simulation sim;
  net::Network net(sim);
  simmpi::MpiJob job(net, 2, 1, simmpi::Vendor::cray_mpich);
  std::uint64_t mpi_hash = 0;
  std::vector<render::FrameBuffer> fbs(2);
  job.launch([&](int rank, mona::Communicator& world) {
    const vis::Vec3 center{8, 8, 8};
    vis::UniformGrid block = sphere_block(16, {0, 0, 0}, center);
    block.origin.z = static_cast<float>(rank) * 15.0f;
    auto vals = block.point_data.find("dist")->as_mutable<float>();
    for (std::uint32_t k = 0; k < 16; ++k)
      for (std::uint32_t j = 0; j < 16; ++j)
        for (std::uint32_t i = 0; i < 16; ++i)
          vals[block.point_index(i, j, k)] =
              (block.point(i, j, k) -
               vis::Vec3{8, 8, 8 + 15.0f * static_cast<float>(rank)})
                  .norm();
    std::vector<vis::DataSet> blocks{vis::DataSet{block}};
    vis::MpiCommunicator comm(world);
    auto r = execute(s, blocks, comm, fbs[static_cast<std::size_t>(rank)], 1);
    ASSERT_TRUE(r.has_value());
    if (rank == 0) mpi_hash = fbs[0].content_hash();
  });
  sim.run();
  EXPECT_EQ(mpi_hash, mona_hash);
}

TEST(CatalystExecute, VolumeModeOverUnstructured) {
  des::Simulation sim;
  net::Network net(sim);
  auto& p = net.create_process(0);
  mona::Instance inst(p);
  auto comm = inst.comm_create({p.id()});
  PipelineScript s = PipelineScript::dwi();
  s.field = "v";
  s.image_width = s.image_height = 32;
  s.resample_dims = {12, 12, 12};
  bool ok = false;
  render::FrameBuffer fb;
  p.spawn("rank", [&] {
    // A few tetrahedra with a cell field.
    vis::UnstructuredGrid g;
    g.points = {{0, 0, 0}, {4, 0, 0}, {0, 4, 0}, {0, 0, 4}, {4, 4, 4}};
    const std::uint32_t t1[] = {0, 1, 2, 3};
    const std::uint32_t t2[] = {1, 2, 3, 4};
    g.add_cell(vis::CellType::tetra, t1);
    g.add_cell(vis::CellType::tetra, t2);
    g.cell_data.add(
        vis::DataArray::make<float>("v", std::vector<float>{0.8f, 0.6f}));
    std::vector<vis::DataSet> blocks{vis::DataSet{g}};
    vis::MonaCommunicator c(comm);
    auto r = execute(s, blocks, c, fb, 1);
    ASSERT_TRUE(r.has_value()) << r.status().to_string();
    EXPECT_EQ(r->cells_processed, 2u);
    ok = true;
  });
  sim.run();
  ASSERT_TRUE(ok);
  render::FrameBuffer empty(32, 32);
  EXPECT_NE(fb.content_hash(), empty.content_hash());
}

TEST(CatalystExecute, EmptyBlocksStillCollective) {
  // Ranks without data must still participate in compositing.
  des::Simulation sim;
  net::Network net(sim);
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < 3; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p));
    addrs.push_back(p.id());
  }
  PipelineScript s;
  s.field = "dist";
  s.iso_values = {4.0f};
  s.image_width = s.image_height = 24;
  s.range_hi = 10.0f;
  int done = 0;
  std::vector<render::FrameBuffer> fbs(3);
  std::vector<std::shared_ptr<mona::Communicator>> comms;
  for (int i = 0; i < 3; ++i) comms.push_back(insts[static_cast<std::size_t>(i)]->comm_create(addrs));
  for (int i = 0; i < 3; ++i) {
    procs[static_cast<std::size_t>(i)]->spawn("rank", [&, i] {
      std::vector<vis::DataSet> blocks;
      if (i == 1) {
        blocks.emplace_back(sphere_block(12, {0, 0, 0}, {6, 6, 6}));
      }
      vis::MonaCommunicator c(comms[static_cast<std::size_t>(i)]);
      auto r = execute(s, blocks, c, fbs[static_cast<std::size_t>(i)], 1);
      ASSERT_TRUE(r.has_value());
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, 3);
}

TEST(CatalystExecute, SavesImageWhenConfigured) {
  des::Simulation sim;
  net::Network net(sim);
  auto& p = net.create_process(0);
  mona::Instance inst(p);
  auto comm = inst.comm_create({p.id()});
  PipelineScript s;
  s.field = "dist";
  s.iso_values = {3.0f};
  s.image_width = s.image_height = 16;
  s.range_hi = 10.0f;
  s.save_path = "/tmp/colza_catalyst_test_{}.ppm";
  p.spawn("rank", [&] {
    std::vector<vis::DataSet> blocks{
        vis::DataSet{sphere_block(12, {0, 0, 0}, {6, 6, 6})}};
    vis::MonaCommunicator c(comm);
    render::FrameBuffer fb;
    auto r = execute(s, blocks, c, fb, 42);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->wrote_image);
  });
  sim.run();
  std::FILE* f = std::fopen("/tmp/colza_catalyst_test_42.ppm", "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove("/tmp/colza_catalyst_test_42.ppm");
}

TEST(CatalystExecute, ChargesVirtualTimeForCompute) {
  des::Simulation sim;
  net::Network net(sim);
  auto& p = net.create_process(0);
  mona::Instance inst(p);
  auto comm = inst.comm_create({p.id()});
  PipelineScript s;
  s.field = "dist";
  s.iso_values = {5.0f};
  s.image_width = s.image_height = 64;
  s.range_hi = 20.0f;
  des::Time elapsed = 0;
  p.spawn("rank", [&] {
    std::vector<vis::DataSet> blocks{
        vis::DataSet{sphere_block(24, {0, 0, 0}, {12, 12, 12})}};
    vis::MonaCommunicator c(comm);
    render::FrameBuffer fb;
    const des::Time t0 = sim.now();
    ASSERT_TRUE(execute(s, blocks, c, fb, 1).has_value());
    elapsed = sim.now() - t0;
  });
  sim.run();
  EXPECT_GT(elapsed, 0u);  // filtering/rendering cost landed on the clock
}

}  // namespace
}  // namespace colza::catalyst

// Tests for the SWIM group membership: founding, gossip convergence, joins,
// graceful leaves, failure detection through suspicion, refutation, and the
// bootstrap "connection file".
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "des/simulation.hpp"
#include "net/network.hpp"
#include "rpc/engine.hpp"
#include "ssg/ssg.hpp"

namespace colza::ssg {
namespace {

using des::milliseconds;
using des::seconds;

// Harness: n founding members, each with its own process + engine + group.
class SsgWorld {
 public:
  explicit SsgWorld(int n, SwimConfig cfg = {}, std::uint64_t seed = 3)
      : sim(des::SimConfig{.seed = seed}), net(sim), config(cfg) {
    std::vector<net::ProcId> addrs;
    for (int i = 0; i < n; ++i) {
      auto& p = net.create_process(static_cast<net::NodeId>(i));
      procs.push_back(&p);
      engines.push_back(
          std::make_unique<rpc::Engine>(p, net::Profile::mona()));
      addrs.push_back(p.id());
    }
    for (int i = 0; i < n; ++i) {
      groups.push_back(std::make_unique<Group>(*engines[static_cast<std::size_t>(i)],
                                               config, addrs, &bootstrap));
    }
  }

  // Adds a fresh process that joins through the bootstrap file; returns its
  // index. Must be invoked at a scheduled time (joins need fibers).
  void spawn_joiner(std::function<void(int idx)> after = {}) {
    auto& p = net.create_process(
        static_cast<net::NodeId>(procs.size()));
    procs.push_back(&p);
    engines.push_back(std::make_unique<rpc::Engine>(p, net::Profile::mona()));
    const int idx = static_cast<int>(procs.size()) - 1;
    p.spawn("joiner", [this, idx, after] {
      auto r = Group::join(*engines[static_cast<std::size_t>(idx)], config,
                           bootstrap.contacts(), &bootstrap);
      ASSERT_TRUE(r.has_value()) << r.status().to_string();
      groups.push_back(std::move(*r));
      if (after) after(idx);
    });
  }

  [[nodiscard]] bool converged() const {
    for (const auto& g : groups) {
      if (g->view() != groups[0]->view()) return false;
    }
    return true;
  }

  des::Simulation sim;
  net::Network net;
  SwimConfig config;
  Bootstrap bootstrap;
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<rpc::Engine>> engines;
  std::vector<std::unique_ptr<Group>> groups;
};

TEST(Ssg, FoundingGroupSeesAllMembers) {
  SsgWorld w(5);
  w.sim.run_until(seconds(2));
  for (auto& g : w.groups) {
    EXPECT_EQ(g->size(), 5u);
    EXPECT_TRUE(w.converged());
  }
}

TEST(Ssg, ViewHashEqualAcrossMembers) {
  SsgWorld w(6);
  w.sim.run_until(seconds(2));
  const auto h = w.groups[0]->view_hash();
  for (auto& g : w.groups) EXPECT_EQ(g->view_hash(), h);
}

TEST(Ssg, StableGroupStaysStable) {
  SsgWorld w(8);
  w.sim.run_until(seconds(60));
  EXPECT_TRUE(w.converged());
  for (auto& g : w.groups) EXPECT_EQ(g->size(), 8u);
}

TEST(Ssg, JoinPropagatesToAllMembers) {
  SsgWorld w(6);
  w.sim.run_until(seconds(1));
  w.sim.schedule_at(seconds(5), [&] { w.spawn_joiner(); });
  w.sim.run_until(seconds(20));
  ASSERT_EQ(w.groups.size(), 7u);
  for (auto& g : w.groups) {
    EXPECT_EQ(g->size(), 7u) << "a member has not yet learned about the join";
  }
  EXPECT_TRUE(w.converged());
}

TEST(Ssg, JoinerGetsFullViewImmediately) {
  SsgWorld w(5);
  w.sim.run_until(seconds(1));
  w.sim.schedule_at(seconds(2), [&] {
    w.spawn_joiner([&](int) {
      EXPECT_EQ(w.groups.back()->size(), 6u);  // contact's reply = full view
    });
  });
  w.sim.run_until(seconds(10));
}

TEST(Ssg, JoinEmitsCallback) {
  SsgWorld w(4);
  std::vector<std::pair<net::ProcId, MemberEvent>> events;
  w.groups[0]->on_change([&](net::ProcId p, MemberEvent e) {
    events.emplace_back(p, e);
  });
  w.sim.schedule_at(seconds(2), [&] { w.spawn_joiner(); });
  w.sim.run_until(seconds(20));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, w.procs.back()->id());
  EXPECT_EQ(events[0].second, MemberEvent::joined);
}

TEST(Ssg, GracefulLeavePropagates) {
  SsgWorld w(6);
  w.sim.run_until(seconds(2));
  w.sim.schedule_at(seconds(3), [&] { w.groups[2]->leave(); });
  w.sim.run_until(seconds(30));
  for (std::size_t i = 0; i < w.groups.size(); ++i) {
    if (i == 2) continue;
    EXPECT_EQ(w.groups[i]->size(), 5u) << "member " << i;
    EXPECT_FALSE(w.groups[i]->contains(w.procs[2]->id()));
  }
}

TEST(Ssg, CrashDetectedViaSuspicion) {
  SsgWorld w(6);
  std::vector<MemberEvent> events;
  w.groups[0]->on_change(
      [&](net::ProcId, MemberEvent e) { events.push_back(e); });
  w.sim.run_until(seconds(2));
  // Hard kill (no leave): SWIM must detect it within a few probe periods
  // plus the suspicion timeout.
  w.sim.schedule_at(seconds(3), [&] { w.procs[4]->kill(); });
  w.sim.run_until(seconds(60));
  for (std::size_t i = 0; i < w.groups.size(); ++i) {
    if (i == 4) continue;
    EXPECT_FALSE(w.groups[i]->contains(w.procs[4]->id())) << "member " << i;
    EXPECT_EQ(w.groups[i]->size(), 5u);
  }
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back(), MemberEvent::died);
}

TEST(Ssg, CrashDetectionLatencyBounded) {
  SwimConfig cfg;
  SsgWorld w(8, cfg);
  w.sim.run_until(seconds(2));
  des::Time detected = 0;
  w.groups[0]->on_change([&](net::ProcId, MemberEvent e) {
    if (e == MemberEvent::died && detected == 0) detected = w.sim.now();
  });
  w.sim.schedule_at(seconds(5), [&] { w.procs[7]->kill(); });
  w.sim.run_until(seconds(120));
  ASSERT_GT(detected, 0u) << "crash never detected";
  // Loose upper bound: probing is randomized, but with 7 live probers the
  // failure should be suspected within a few periods and declared dead one
  // suspicion timeout later.
  EXPECT_LT(detected, seconds(5) + 15 * cfg.probe_period +
                          2 * cfg.suspicion_timeout);
}

TEST(Ssg, FalseSuspicionRefutedByIncarnation) {
  SsgWorld w(5);
  w.sim.run_until(seconds(2));
  // Inject a false suspicion about member 3 into member 0's gossip stream.
  const net::ProcId victim = w.procs[3]->id();
  bool died = false;
  w.groups[0]->on_change([&](net::ProcId p, MemberEvent e) {
    if (p == victim && e == MemberEvent::died) died = true;
  });
  w.sim.schedule_at(seconds(3), [&] {
    w.procs[0]->spawn("inject", [&] {
      // Craft the suspicion by calling the victim's *peers* with a forged
      // piggyback: easiest is to briefly pause the victim so a real probe
      // fails... instead we emulate a transient stall: kill is permanent in
      // this fabric, so forge via the public RPC path.
      // (Member 0 sends itself a ping carrying "suspect victim, inc 0".)
    });
  });
  // Without forged internals, verify the refutation machinery indirectly: a
  // healthy group must never declare a live member dead over a long window.
  w.sim.run_until(seconds(90));
  EXPECT_FALSE(died);
  EXPECT_TRUE(w.converged());
  for (auto& g : w.groups) EXPECT_EQ(g->size(), 5u);
}

TEST(Ssg, BootstrapTracksMembership) {
  SsgWorld w(4);
  w.sim.run_until(seconds(2));
  EXPECT_EQ(w.bootstrap.contacts().size(), 4u);
  w.sim.schedule_at(seconds(3), [&] { w.spawn_joiner(); });
  w.sim.run_until(seconds(20));
  EXPECT_EQ(w.bootstrap.contacts().size(), 5u);
  w.sim.schedule_at(seconds(21), [&] { w.groups[1]->leave(); });
  w.sim.run_until(seconds(50));
  EXPECT_EQ(w.bootstrap.contacts().size(), 4u);
}

TEST(Ssg, SequentialJoinsAllConverge) {
  SsgWorld w(2);
  w.sim.run_until(seconds(1));
  for (int j = 0; j < 4; ++j) {
    w.sim.schedule_at(seconds(2 + static_cast<std::uint64_t>(j) * 8),
                      [&] { w.spawn_joiner(); });
  }
  w.sim.run_until(seconds(60));
  ASSERT_EQ(w.groups.size(), 6u);
  for (auto& g : w.groups) EXPECT_EQ(g->size(), 6u);
  EXPECT_TRUE(w.converged());
}

TEST(Ssg, JoinPropagationTimeIsSeconds) {
  // The Fig 4 claim: elastic resize (join + propagation) lands in ~5 s,
  // not tens of seconds. Measure from join() to full convergence.
  SsgWorld w(8);
  w.sim.run_until(seconds(2));
  des::Time join_at = seconds(4);
  w.sim.schedule_at(join_at, [&] { w.spawn_joiner(); });
  des::Time converged_at = 0;
  // Poll convergence at 100 ms resolution.
  for (des::Time t = join_at; t < seconds(40); t += milliseconds(100)) {
    w.sim.run_until(t);
    if (w.groups.size() == 9 && w.converged() && w.groups[0]->size() == 9) {
      converged_at = t;
      break;
    }
  }
  ASSERT_GT(converged_at, 0u);
  EXPECT_LT(converged_at - join_at, seconds(10));
}

TEST(Ssg, RemoveObserverStopsCallbacks) {
  SsgWorld w(3);
  int calls = 0;
  auto id = w.groups[0]->on_change([&](net::ProcId, MemberEvent) { ++calls; });
  w.groups[0]->remove_observer(id);
  w.sim.schedule_at(seconds(2), [&] { w.spawn_joiner(); });
  w.sim.run_until(seconds(15));
  EXPECT_EQ(calls, 0);
}

TEST(Ssg, JoinWithDeadContactFallsBack) {
  SsgWorld w(3);
  w.sim.run_until(seconds(1));
  // First bootstrap contact dies; a joiner must still get in via another.
  std::vector<net::ProcId> contacts = w.bootstrap.contacts();
  w.procs[0]->kill();
  auto& p = w.net.create_process(10);
  auto eng = std::make_unique<rpc::Engine>(p, net::Profile::mona());
  bool joined = false;
  p.spawn("joiner", [&] {
    auto r = Group::join(*eng, w.config, contacts, &w.bootstrap);
    ASSERT_TRUE(r.has_value());
    joined = true;
    w.groups.push_back(std::move(*r));
  });
  w.sim.run_until(seconds(30));
  EXPECT_TRUE(joined);
}

TEST(Ssg, JoinFailsWhenNobodyAnswers) {
  des::Simulation sim;
  net::Network net(sim);
  auto& dead = net.create_process(0);
  dead.kill();
  auto& p = net.create_process(1);
  rpc::Engine eng(p, net::Profile::mona());
  StatusCode code = StatusCode::ok;
  p.spawn("joiner", [&] {
    auto r = Group::join(eng, SwimConfig{}, {dead.id()});
    code = r.status().code();
  });
  sim.run();
  EXPECT_EQ(code, StatusCode::unreachable);
}


// ------------------------------------------------------- fault injection

TEST(Ssg, IndirectProbesMaskBrokenDirectLink) {
  // Cut the direct link from member 0 to member 3 (both directions): member
  // 0's direct pings to 3 always fail, so only the ping-req path (through k
  // random proxies) can keep member 3 alive in 0's view.
  SsgWorld w(6);
  w.sim.run_until(seconds(2));
  const net::ProcId a = w.procs[0]->id();
  const net::ProcId t = w.procs[3]->id();
  w.net.set_link_down(a, t, true);
  w.net.set_link_down(t, a, true);
  bool died = false;
  w.groups[0]->on_change([&](net::ProcId p, MemberEvent e) {
    if (p == t && e != MemberEvent::joined) died = true;
  });
  w.sim.run_until(seconds(120));
  EXPECT_FALSE(died) << "indirect probing failed to mask the broken link";
  EXPECT_TRUE(w.groups[0]->contains(t));
  EXPECT_TRUE(w.converged());
}

TEST(Ssg, ToleratesRandomMessageLoss) {
  // 5% random message loss: gossip redundancy, indirect probes, and the
  // suspicion window must keep the group stable (no false deaths) over a
  // long run. (At higher loss rates with aggressive timeouts SWIM does
  // false-positive -- that is the protocol's documented behaviour, mitigated
  // in practice by Lifeguard-style extensions.)
  des::Simulation sim(des::SimConfig{.seed = 77});
  net::NetworkConfig ncfg;
  ncfg.message_loss_probability = 0.05;
  net::Network net(sim, ncfg);
  SwimConfig cfg;
  cfg.suspicion_timeout = des::seconds(8);
  ssg::Bootstrap bootstrap;
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<rpc::Engine>> engines;
  std::vector<std::unique_ptr<Group>> groups;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < 8; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&p);
    engines.push_back(std::make_unique<rpc::Engine>(p, net::Profile::mona()));
    addrs.push_back(p.id());
  }
  for (int i = 0; i < 8; ++i) {
    groups.push_back(std::make_unique<Group>(
        *engines[static_cast<std::size_t>(i)], cfg, addrs, &bootstrap));
  }
  sim.run_until(seconds(180));
  for (const auto& g : groups) {
    EXPECT_EQ(g->size(), 8u) << "a member was falsely declared dead";
  }
}

TEST(Ssg, ChurnManyJoinsAndLeavesConverges) {
  // Stress: joins and graceful leaves interleaved; everyone must agree at
  // the end.
  SsgWorld w(4);
  w.sim.run_until(seconds(2));
  for (int j = 0; j < 3; ++j) {
    w.sim.schedule_at(seconds(4 + static_cast<std::uint64_t>(j) * 6),
                      [&] { w.spawn_joiner(); });
  }
  w.sim.schedule_at(seconds(10), [&] { w.groups[1]->leave(); });
  w.sim.schedule_at(seconds(16), [&] { w.groups[2]->leave(); });
  w.sim.run_until(seconds(90));
  // 4 founders + 3 joiners - 2 leavers = 5 members.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < w.groups.size(); ++i) {
    if (i == 1 || i == 2) continue;  // the leavers' groups are inert
    EXPECT_EQ(w.groups[i]->size(), 5u) << "group " << i;
    ++checked;
  }
  EXPECT_EQ(checked, 5u);
}

}  // namespace
}  // namespace colza::ssg

// Tests for the three evaluation applications: Gray-Scott (conservation,
// pattern formation, parallel/serial equivalence via halo exchange),
// Mandelbulb (escape function, block decomposition), and the DWI proxy
// (growth curve, determinism, mesh validity).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "apps/dwi_proxy.hpp"
#include "apps/gray_scott.hpp"
#include "apps/mandelbulb.hpp"
#include "des/simulation.hpp"
#include "mona/mona.hpp"
#include "net/network.hpp"

namespace colza::apps {
namespace {

// ------------------------------------------------------------- Gray-Scott

TEST(GrayScott, InitialConditionHasSeed) {
  GrayScott gs(GrayScott::Params{.n = 32}, 0, 1);
  vis::UniformGrid g = gs.block();
  const auto v = g.point_data.find("v")->as<float>();
  float vmax = 0;
  for (float x : v) vmax = std::max(vmax, x);
  EXPECT_GT(vmax, 0.4f);  // the center seed
  const auto u = g.point_data.find("u")->as<float>();
  EXPECT_NEAR(u[0], 1.0f, 1e-5f);  // background
}

TEST(GrayScott, FieldsStayBounded) {
  GrayScott::Params p{.n = 24};
  p.steps_per_iteration = 20;
  GrayScott gs(p, 0, 1);
  ASSERT_TRUE(gs.step(nullptr).ok());
  vis::UniformGrid g = gs.block();
  for (const char* f : {"u", "v"}) {
    for (float x : g.point_data.find(f)->as<float>()) {
      ASSERT_GE(x, -0.01f) << f;
      ASSERT_LE(x, 1.51f) << f;
    }
  }
}

TEST(GrayScott, ReactionSpreadsOverTime) {
  GrayScott::Params p{.n = 32};
  p.steps_per_iteration = 50;
  GrayScott gs(p, 0, 1);
  auto active = [&] {
    vis::UniformGrid g = gs.block();
    int n = 0;
    for (float x : g.point_data.find("v")->as<float>()) n += x > 0.1f ? 1 : 0;
    return n;
  };
  const int before = active();
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(gs.step(nullptr).ok());
  EXPECT_GT(active(), before);
}

TEST(GrayScott, SlabsPartitionGlobalDomain) {
  GrayScott::Params p{.n = 30};
  std::uint32_t total = 0;
  for (int r = 0; r < 4; ++r) {
    GrayScott gs(p, r, 4);
    total += gs.local_nz();
    vis::UniformGrid g = gs.block();
    EXPECT_EQ(g.dims[2], gs.local_nz());
  }
  EXPECT_EQ(total, 30u);
}

TEST(GrayScott, ParallelMatchesSerial) {
  // 2 ranks with halo exchange must reproduce the serial run exactly.
  GrayScott::Params p{.n = 16};
  p.steps_per_iteration = 10;
  p.noise = 0.0;  // per-rank RNG streams differ; disable noise for equality

  GrayScott serial(p, 0, 1);
  ASSERT_TRUE(serial.step(nullptr).ok());
  vis::UniformGrid sg = serial.block();
  const auto sv = sg.point_data.find("v")->as<float>();

  des::Simulation sim;
  net::Network net(sim);
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < 2; ++i) {
    auto& pr = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&pr);
    insts.push_back(std::make_unique<mona::Instance>(pr));
    addrs.push_back(pr.id());
  }
  std::vector<vis::UniformGrid> blocks(2);
  for (int r = 0; r < 2; ++r) {
    procs[static_cast<std::size_t>(r)]->spawn("gs", [&, r] {
      auto comm = insts[static_cast<std::size_t>(r)]->comm_create(addrs);
      GrayScott gs(p, r, 2);
      ASSERT_TRUE(gs.step(comm.get()).ok());
      blocks[static_cast<std::size_t>(r)] = gs.block();
    });
  }
  sim.run();

  // Compare the two slabs against the corresponding serial planes.
  const std::size_t plane = 16 * 16;
  for (int r = 0; r < 2; ++r) {
    const auto pv =
        blocks[static_cast<std::size_t>(r)].point_data.find("v")->as<float>();
    const std::size_t z0 = static_cast<std::size_t>(r) * 8;
    for (std::size_t i = 0; i < pv.size(); ++i) {
      ASSERT_NEAR(pv[i], sv[z0 * plane + i], 1e-5f)
          << "rank " << r << " index " << i;
    }
  }
}

TEST(GrayScott, InvalidConfigThrows) {
  EXPECT_THROW(GrayScott(GrayScott::Params{.n = 2}, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(GrayScott(GrayScott::Params{.n = 16}, 5, 4),
               std::invalid_argument);
  EXPECT_THROW(GrayScott(GrayScott::Params{.n = 8}, 15, 16),
               std::invalid_argument);  // more ranks than planes
}


// --------------------------------------------------------- GrayScott3D

TEST(GrayScott3D, CartesianDimsBalanced) {
  EXPECT_EQ(cartesian_dims(1), (std::array<int, 3>{1, 1, 1}));
  EXPECT_EQ(cartesian_dims(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(cartesian_dims(12), (std::array<int, 3>{2, 2, 3}));
  EXPECT_EQ(cartesian_dims(7), (std::array<int, 3>{1, 1, 7}));
  for (int n : {2, 3, 4, 6, 16, 24, 64}) {
    const auto d = cartesian_dims(n);
    EXPECT_EQ(d[0] * d[1] * d[2], n) << n;
    EXPECT_LE(d[0], d[1]);
    EXPECT_LE(d[1], d[2]);
  }
}

TEST(GrayScott3D, BoxesPartitionTheDomain) {
  GrayScott3D::Params p{.n = 20};
  std::size_t total_points = 0;
  for (int r = 0; r < 12; ++r) {
    GrayScott3D gs(p, r, 12);
    const auto e = gs.local_extent();
    total_points += static_cast<std::size_t>(e[0]) * e[1] * e[2];
  }
  EXPECT_EQ(total_points, 20u * 20u * 20u);
}

TEST(GrayScott3D, SingleRankMatchesSlabVersionInitially) {
  GrayScott::Params p{.n = 16};
  p.noise = 0.0;
  GrayScott slab(p, 0, 1);
  GrayScott3D box(p, 0, 1);
  // block() returns the grid by value; keep it alive past the span.
  const vis::UniformGrid sg = slab.block();
  const vis::UniformGrid bg = box.block();
  const auto sv = sg.point_data.find("v")->as<float>();
  const auto bv = bg.point_data.find("v")->as<float>();
  ASSERT_EQ(sv.size(), bv.size());
  for (std::size_t i = 0; i < sv.size(); ++i) ASSERT_EQ(sv[i], bv[i]) << i;
}

TEST(GrayScott3D, ParallelMatchesSerialAcross8Ranks) {
  // 2x2x2 decomposition with six-face halo exchange must reproduce the
  // serial run exactly (noise off so per-rank RNG streams don't differ).
  GrayScott3D::Params p{.n = 12};
  p.steps_per_iteration = 6;
  p.noise = 0.0;

  GrayScott3D serial(p, 0, 1);
  ASSERT_TRUE(serial.step(nullptr).ok());
  vis::UniformGrid sg = serial.block();
  const auto sv = sg.point_data.find("v")->as<float>();

  des::Simulation sim;
  net::Network net(sim);
  constexpr int kRanks = 8;
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < kRanks; ++i) {
    auto& pr = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&pr);
    insts.push_back(std::make_unique<mona::Instance>(pr));
    addrs.push_back(pr.id());
  }
  std::vector<vis::UniformGrid> blocks(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    procs[static_cast<std::size_t>(r)]->spawn("gs3d", [&, r] {
      auto comm = insts[static_cast<std::size_t>(r)]->comm_create(addrs);
      GrayScott3D gs(p, r, kRanks);
      ASSERT_TRUE(gs.step(comm.get()).ok());
      blocks[static_cast<std::size_t>(r)] = gs.block();
    });
  }
  sim.run();

  // Compare every rank's box against the serial solution.
  for (int r = 0; r < kRanks; ++r) {
    const auto& b = blocks[static_cast<std::size_t>(r)];
    const auto bv = b.point_data.find("v")->as<float>();
    const auto x0 = static_cast<std::uint32_t>(b.origin.x);
    const auto y0 = static_cast<std::uint32_t>(b.origin.y);
    const auto z0 = static_cast<std::uint32_t>(b.origin.z);
    std::size_t idx = 0;
    for (std::uint32_t k = 0; k < b.dims[2]; ++k) {
      for (std::uint32_t j = 0; j < b.dims[1]; ++j) {
        for (std::uint32_t i = 0; i < b.dims[0]; ++i, ++idx) {
          ASSERT_NEAR(bv[idx], sv[sg.point_index(x0 + i, y0 + j, z0 + k)],
                      1e-5f)
              << "rank " << r << " at (" << i << "," << j << "," << k << ")";
        }
      }
    }
  }
}

TEST(GrayScott3D, ParallelMatchesSerialNonPowerOfTwo) {
  GrayScott3D::Params p{.n = 12};
  p.steps_per_iteration = 4;
  p.noise = 0.0;
  GrayScott3D serial(p, 0, 1);
  ASSERT_TRUE(serial.step(nullptr).ok());
  vis::UniformGrid sg = serial.block();
  const auto sv = sg.point_data.find("v")->as<float>();

  des::Simulation sim;
  net::Network net(sim);
  constexpr int kRanks = 6;  // 1x2x3 grid
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < kRanks; ++i) {
    auto& pr = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&pr);
    insts.push_back(std::make_unique<mona::Instance>(pr));
    addrs.push_back(pr.id());
  }
  std::vector<vis::UniformGrid> blocks(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    procs[static_cast<std::size_t>(r)]->spawn("gs3d", [&, r] {
      auto comm = insts[static_cast<std::size_t>(r)]->comm_create(addrs);
      GrayScott3D gs(p, r, kRanks);
      ASSERT_TRUE(gs.step(comm.get()).ok());
      blocks[static_cast<std::size_t>(r)] = gs.block();
    });
  }
  sim.run();
  for (int r = 0; r < kRanks; ++r) {
    const auto& b = blocks[static_cast<std::size_t>(r)];
    const auto bv = b.point_data.find("v")->as<float>();
    const auto x0 = static_cast<std::uint32_t>(b.origin.x);
    const auto y0 = static_cast<std::uint32_t>(b.origin.y);
    const auto z0 = static_cast<std::uint32_t>(b.origin.z);
    std::size_t idx = 0;
    for (std::uint32_t k = 0; k < b.dims[2]; ++k)
      for (std::uint32_t j = 0; j < b.dims[1]; ++j)
        for (std::uint32_t i = 0; i < b.dims[0]; ++i, ++idx)
          ASSERT_NEAR(bv[idx], sv[sg.point_index(x0 + i, y0 + j, z0 + k)],
                      1e-5f)
              << "rank " << r;
  }
}

// ------------------------------------------------------------- Mandelbulb

TEST(Mandelbulb, EscapeBehaviour) {
  // Far outside: escapes immediately (first check sees r2 > 4 after 1 iter).
  EXPECT_LE(mandelbulb_escape(2.5f, 0, 0, 8, 30), 2);
  // Origin never escapes.
  EXPECT_EQ(mandelbulb_escape(0, 0, 0, 8, 30), 30);
  // Monotone in max_iterations for interior points.
  EXPECT_EQ(mandelbulb_escape(0.1f, 0.1f, 0.1f, 8, 10),
            std::min(10, mandelbulb_escape(0.1f, 0.1f, 0.1f, 8, 50)));
}

TEST(Mandelbulb, BlockFieldInRange) {
  MandelbulbParams p;
  p.nx = p.ny = p.nz = 12;
  p.total_blocks = 4;
  vis::UniformGrid g = mandelbulb_block(p, 1);
  const auto f = g.point_data.find("iterations")->as<float>();
  ASSERT_EQ(f.size(), g.point_count());
  float lo = 1e9f, hi = -1e9f;
  for (float x : f) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_GE(lo, 0.0f);
  EXPECT_LE(hi, static_cast<float>(p.max_iterations));
  EXPECT_GT(hi, lo);  // the fractal boundary crosses this block
}

TEST(Mandelbulb, BlocksTileTheZAxis) {
  MandelbulbParams p;
  p.nx = p.ny = p.nz = 8;
  p.total_blocks = 4;
  float prev_top = -p.range;
  for (std::uint32_t b = 0; b < 4; ++b) {
    vis::UniformGrid g = mandelbulb_block(p, b);
    EXPECT_NEAR(g.origin.z, prev_top, 1e-5f);
    prev_top = g.origin.z + g.spacing.z * static_cast<float>(p.nz - 1);
  }
  EXPECT_NEAR(prev_top, p.range, 1e-5f);
  EXPECT_THROW(mandelbulb_block(p, 4), std::invalid_argument);
}

TEST(Mandelbulb, DeterministicBlocks) {
  MandelbulbParams p;
  p.nx = p.ny = p.nz = 10;
  p.total_blocks = 2;
  auto a = mandelbulb_block(p, 0);
  auto b = mandelbulb_block(p, 0);
  EXPECT_EQ(a.point_data.find("iterations")->as<float>()[37],
            b.point_data.find("iterations")->as<float>()[37]);
}

// --------------------------------------------------------------- DWI proxy

TEST(DwiProxy, CellCountGrowsWithIteration) {
  DwiParams p;
  p.base_edge = 16;
  p.growth_per_iteration = 2;
  std::size_t prev = 0;
  for (int t : {1, 8, 15, 22, 30}) {
    const std::size_t cells = dwi_expected_cells(p, t);
    EXPECT_GT(cells, prev) << "iteration " << t;
    prev = cells;
  }
  // The paper's Fig 1a spans more than an order of magnitude of growth.
  EXPECT_GT(dwi_expected_cells(p, 30), 10 * dwi_expected_cells(p, 1));
}

TEST(DwiProxy, BytesTrackCells) {
  DwiParams p;
  p.base_edge = 16;
  EXPECT_GT(dwi_expected_bytes(p, 20), dwi_expected_bytes(p, 5));
}

TEST(DwiProxy, BlocksPartitionTheIteration) {
  DwiParams p;
  p.base_edge = 20;
  p.growth_per_iteration = 1;
  p.blocks = 8;
  const int t = 10;
  std::size_t total = 0;
  for (std::uint32_t b = 0; b < p.blocks; ++b) {
    vis::UnstructuredGrid g = dwi_block(p, t, b);
    total += g.cell_count();
    // Mesh validity: connectivity references existing points; velocity per
    // cell.
    for (std::size_t c = 0; c < g.cell_count(); ++c) {
      EXPECT_EQ(g.types[c], vis::CellType::hexahedron);
      for (std::uint32_t idx : g.cell(c)) ASSERT_LT(idx, g.points.size());
    }
    ASSERT_NE(g.cell_data.find("v02"), nullptr);
    EXPECT_EQ(g.cell_data.find("v02")->value_count(), g.cell_count());
  }
  EXPECT_EQ(total, dwi_expected_cells(p, t));
}

TEST(DwiProxy, Deterministic) {
  DwiParams p;
  auto a = dwi_block(p, 5, 100);
  auto b = dwi_block(p, 5, 100);
  ASSERT_EQ(a.cell_count(), b.cell_count());
  if (a.cell_count() > 0) {
    EXPECT_EQ(a.cell_data.find("v02")->as<float>()[0],
              b.cell_data.find("v02")->as<float>()[0]);
  }
}

TEST(DwiProxy, VelocityFieldPositive) {
  DwiParams p;
  vis::UnstructuredGrid g = dwi_block(p, 15, 256);
  for (float v : g.cell_data.find("v02")->as<float>()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 2.0f);
  }
}

TEST(DwiProxy, ArgumentValidation) {
  DwiParams p;
  EXPECT_THROW(dwi_block(p, 0, 0), std::invalid_argument);
  EXPECT_THROW(dwi_block(p, 31, 0), std::invalid_argument);
  EXPECT_THROW(dwi_block(p, 1, p.blocks), std::invalid_argument);
}

}  // namespace
}  // namespace colza::apps

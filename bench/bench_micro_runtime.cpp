// Microbenchmarks (google-benchmark) for the runtime substrate itself:
// fiber switching, sync primitives, the RPC engine, serialization, and the
// visualization kernels. These measure HOST wall time (how fast the
// simulator itself runs), not virtual time.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/mandelbulb.hpp"
#include "mona/mona.hpp"
#include "common/archive.hpp"
#include "des/simulation.hpp"
#include "des/sync.hpp"
#include "net/network.hpp"
#include "render/render.hpp"
#include "rpc/engine.hpp"
#include "vis/filters.hpp"

namespace {

using namespace colza;

void BM_FiberSpawnAndRun(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    for (int i = 0; i < 100; ++i) sim.spawn("f", [] {});
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FiberSpawnAndRun);

void BM_FiberContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    sim.spawn("yielder", [&sim] {
      for (int i = 0; i < 1000; ++i) sim.yield();
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);  // 2 switches per yield
}
BENCHMARK(BM_FiberContextSwitch);

void BM_MutexLockUnlock(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    sim.spawn("locker", [&sim] {
      des::Mutex m(sim);
      for (int i = 0; i < 1000; ++i) {
        m.lock();
        m.unlock();
      }
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MutexLockUnlock);

void BM_RpcRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    net::Network net(sim);
    auto& ps = net.create_process(0);
    auto& pc = net.create_process(1);
    rpc::Engine server(ps, net::Profile::mona());
    rpc::Engine client(pc, net::Profile::mona());
    server.define("echo", [](const rpc::RequestInfo&, InArchive& in,
                             OutArchive& out) {
      std::int32_t v = 0;
      in.load(v);
      out.save(v);
      return Status::Ok();
    });
    pc.spawn("caller", [&] {
      for (int i = 0; i < 100; ++i) {
        auto r = client.call<std::int32_t>(server.self(), "echo",
                                           std::int32_t{i});
        benchmark::DoNotOptimize(r);
      }
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RpcRoundTrip);

void BM_SerializeDataset(benchmark::State& state) {
  vis::UniformGrid g;
  g.dims = {32, 32, 32};
  g.point_data.add(vis::DataArray::make<float>(
      "f", std::vector<float>(g.point_count(), 1.5f)));
  const vis::DataSet ds{g};
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto blob = vis::serialize_dataset(ds);
    bytes += blob.size();
    auto back = vis::deserialize_dataset(blob);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SerializeDataset);

void BM_MarchingTetrahedra(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vis::UniformGrid g;
  g.dims = {n, n, n};
  std::vector<float> f(g.point_count());
  const vis::Vec3 c{static_cast<float>(n) / 2, static_cast<float>(n) / 2,
                    static_cast<float>(n) / 2};
  for (std::uint32_t k = 0; k < n; ++k)
    for (std::uint32_t j = 0; j < n; ++j)
      for (std::uint32_t i = 0; i < n; ++i)
        f[g.point_index(i, j, k)] = (g.point(i, j, k) - c).norm();
  g.point_data.add(vis::DataArray::make<float>("d", f));
  for (auto _ : state) {
    auto mesh = vis::isosurface(g, "d", static_cast<float>(n) / 3);
    benchmark::DoNotOptimize(mesh);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.cell_count()));
}
BENCHMARK(BM_MarchingTetrahedra)->Arg(16)->Arg(32);

void BM_Rasterize(benchmark::State& state) {
  vis::UniformGrid g;
  g.dims = {24, 24, 24};
  std::vector<float> f(g.point_count());
  for (std::uint32_t k = 0; k < 24; ++k)
    for (std::uint32_t j = 0; j < 24; ++j)
      for (std::uint32_t i = 0; i < 24; ++i)
        f[g.point_index(i, j, k)] =
            (g.point(i, j, k) - vis::Vec3{12, 12, 12}).norm();
  g.point_data.add(vis::DataArray::make<float>("d", f));
  const auto mesh = vis::isosurface(g, "d", 8.0f);
  const render::Camera cam = render::Camera::framing(mesh.bounds());
  render::FrameBuffer fb(256, 256);
  for (auto _ : state) {
    fb.clear();
    render::rasterize(fb, mesh, cam,
                      render::ColorMap{render::ColorMapKind::viridis, 0, 24});
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mesh.triangle_count()));
}
BENCHMARK(BM_Rasterize);

void BM_MandelbulbBlock(benchmark::State& state) {
  apps::MandelbulbParams p;
  p.nx = p.ny = p.nz = 16;
  p.total_blocks = 4;
  for (auto _ : state) {
    auto block = apps::mandelbulb_block(p, 1);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * 16);
}
BENCHMARK(BM_MandelbulbBlock);

void BM_MonaMessageFlood(benchmark::State& state) {
  const auto msg_bytes = static_cast<std::size_t>(state.range(0));
  constexpr int kMsgs = 200;
  std::size_t delivered = 0;
  for (auto _ : state) {
    des::Simulation sim;
    net::Network net(sim);
    auto& pa = net.create_process(0);
    auto& pb = net.create_process(1);
    mona::Instance ia(pa);
    mona::Instance ib(pb);
    pa.spawn("sender", [&] {
      std::vector<std::byte> data(msg_bytes, std::byte{7});
      for (int i = 0; i < kMsgs; ++i) ia.send(data, pb.id(), 5).check();
    });
    pb.spawn("receiver", [&] {
      std::vector<std::byte> buf(msg_bytes);
      for (int i = 0; i < kMsgs; ++i) ib.recv(buf, pa.id(), 5).check();
    });
    sim.run();
    delivered += kMsgs * msg_bytes;
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
  state.SetBytesProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_MonaMessageFlood)->Arg(64)->Arg(65536);

// ---------------------------------------------------------------------------
// Wall-clock "runtime report" mode (--runtime-report[=path]).
//
// Runs a fixed message-heavy scenario -- a ring of mona instances flooding
// point-to-point traffic plus a batch of collectives -- entirely in host
// time, and reports how fast the simulator core itself chews through it:
// DES events/sec and delivered payload bytes/sec. Emits BENCH_runtime.json
// so speedups of the runtime substrate are measurable across commits.
//
// --procs=N selects the scenario scale. N=8 is the historical scenario
// (comparable across PRs); 512 and 4096 shrink the per-proc message counts
// so one run stays in the seconds range while the simulated-process count --
// and with it the pending-event population and fiber table -- grows by two
// to three orders of magnitude.

struct RuntimeReport {
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t messages = 0;
  double events_per_sec = 0;
  double bytes_per_sec = 0;
  double messages_per_sec = 0;
};

struct ScenarioScale {
  int procs = 8;
  int msgs = 4000;      // per sender, small messages
  int big_msgs = 200;   // per sender, large messages
  int collectives = 60; // allreduce + barrier rounds over the ring
  std::size_t stack_size = 0;  // 0 = simulation default
};

ScenarioScale scale_for(int procs) {
  // The 8-proc numbers are the cross-PR comparable ones; the large scales
  // trade per-proc message counts for proc count so wall time stays bounded.
  if (procs <= 8) return ScenarioScale{8, 4000, 200, 60, 0};
  if (procs <= 512) return ScenarioScale{procs, 300, 12, 8, 0};
  // At 4k procs the default 512 KiB fiber stacks alone would cost ~4 GiB of
  // host RAM; the ring fibers need far less. Stack size does not affect the
  // virtual timeline.
  return ScenarioScale{procs, 50, 4, 2, 96 * 1024};
}

RuntimeReport run_runtime_scenario(const ScenarioScale& sc) {
  const int kProcs = sc.procs;
  const int kMsgs = sc.msgs;           // per sender, small messages
  constexpr std::size_t kSmall = 64;
  const int kBigMsgs = sc.big_msgs;    // per sender, large messages
  constexpr std::size_t kBig = 64 * 1024;
  const int kCollectives = sc.collectives;
  RuntimeReport rep;

  des::SimConfig simcfg;
  if (sc.stack_size != 0) simcfg.default_stack_size = sc.stack_size;
  const auto t0 = std::chrono::steady_clock::now();
  des::Simulation sim(simcfg);
  net::Network net(sim);
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < kProcs; ++i) {
    procs.push_back(&net.create_process(static_cast<net::NodeId>(i / 2)));
    insts.push_back(std::make_unique<mona::Instance>(*procs.back()));
    addrs.push_back(procs.back()->id());
  }
  std::vector<std::shared_ptr<mona::Communicator>> comms(kProcs);
  for (int i = 0; i < kProcs; ++i) {
    procs[static_cast<std::size_t>(i)]->spawn("ring", [&, i] {
      auto& inst = *insts[static_cast<std::size_t>(i)];
      comms[static_cast<std::size_t>(i)] = inst.comm_create(addrs);
      auto& comm = *comms[static_cast<std::size_t>(i)];
      const int next = (i + 1) % kProcs;
      const int prev = (i - 1 + kProcs) % kProcs;
      std::vector<std::byte> out(kBig, std::byte{1});
      std::vector<std::byte> in(kBig);
      // Small-message flood around the ring.
      for (int m = 0; m < kMsgs; ++m) {
        comm.send({out.data(), kSmall}, next, 1).check();
        comm.recv({in.data(), kSmall}, prev, 1).check();
      }
      // Large-message flood.
      for (int m = 0; m < kBigMsgs; ++m) {
        comm.send(out, next, 2).check();
        comm.recv(in, prev, 2).check();
      }
      // Collective pressure: allreduce + barrier churn.
      std::vector<double> v(512, 1.0), r(512);
      const auto op = mona::op_sum<double>();
      for (int c = 0; c < kCollectives; ++c) {
        comm.allreduce({reinterpret_cast<const std::byte*>(v.data()),
                        v.size() * sizeof(double)},
                       {reinterpret_cast<std::byte*>(r.data()),
                        r.size() * sizeof(double)},
                       v.size(), op)
            .check();
        comm.barrier().check();
      }
    });
  }
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();

  rep.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  rep.events = sim.events_processed();
  rep.messages = static_cast<std::uint64_t>(kProcs) * (kMsgs + kBigMsgs);
  rep.delivered_bytes =
      static_cast<std::uint64_t>(kProcs) *
      (static_cast<std::uint64_t>(kMsgs) * kSmall +
       static_cast<std::uint64_t>(kBigMsgs) * kBig);
  rep.events_per_sec = static_cast<double>(rep.events) / rep.wall_seconds;
  rep.bytes_per_sec =
      static_cast<double>(rep.delivered_bytes) / rep.wall_seconds;
  rep.messages_per_sec =
      static_cast<double>(rep.messages) / rep.wall_seconds;
  return rep;
}

int run_runtime_report(const std::string& path, int procs, int repeats) {
  const ScenarioScale sc = scale_for(procs);
  // Warm-up run (populates buffer/stack pools, page cache), then measure
  // the best of `repeats` to damp host noise. The 4k scenario skips the
  // warm-up and runs fewer repeats -- one run is already seconds long.
  if (sc.procs <= 512) (void)run_runtime_scenario(sc);
  RuntimeReport best;
  for (int i = 0; i < repeats; ++i) {
    RuntimeReport r = run_runtime_scenario(sc);
    if (best.wall_seconds == 0 || r.wall_seconds < best.wall_seconds) best = r;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"scenario\": \"mona ring flood + collectives\",\n"
               "  \"procs\": %d,\n"
               "  \"msgs_per_proc\": %d,\n"
               "  \"big_msgs_per_proc\": %d,\n"
               "  \"collectives\": %d,\n"
               "  \"wall_seconds\": %.6f,\n"
               "  \"events\": %llu,\n"
               "  \"messages\": %llu,\n"
               "  \"delivered_bytes\": %llu,\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"messages_per_sec\": %.0f,\n"
               "  \"delivered_bytes_per_sec\": %.0f\n"
               "}\n",
               sc.procs, sc.msgs, sc.big_msgs, sc.collectives,
               best.wall_seconds, static_cast<unsigned long long>(best.events),
               static_cast<unsigned long long>(best.messages),
               static_cast<unsigned long long>(best.delivered_bytes),
               best.events_per_sec, best.messages_per_sec, best.bytes_per_sec);
  std::fclose(f);
  std::printf(
      "runtime report (%d procs): %.3fs wall, %.0f events/s, "
      "%.2f MB/s delivered, %.0f msgs/s -> %s\n",
      sc.procs, best.wall_seconds, best.events_per_sec,
      best.bytes_per_sec / 1e6, best.messages_per_sec, path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// High-occupancy event-queue stress (--queue-report[=path]).
//
// Seeds 2^20 pending events with a skewed timestamp distribution (dense
// near-term mass, a long seconds-scale tail, and deliberate same-timestamp
// bursts), then keeps occupancy at ~10^6 by rescheduling on every fire until
// a fixed event budget is consumed. This is the pending-population regime
// where a binary heap pays ~20-level sift chains per operation and the
// ladder queue's O(1) bucket append shows up directly in wall time. The
// COLZA_DES_QUEUE env var selects the implementation under test.

struct QueueReport {
  double wall_seconds = 0;
  std::uint64_t events = 0;
  double events_per_sec = 0;
  std::uint64_t peak_depth = 0;
  std::uint64_t rung_spawns = 0;
  std::uint64_t top_transfers = 0;
  const char* impl = "";
};

des::Duration skewed_delta(Rng& rng) {
  const auto pick = rng.below(100);
  if (pick < 60) return rng.below(des::milliseconds(10));
  if (pick < 85) return des::milliseconds(10) + rng.below(des::seconds(1));
  if (pick < 97) return des::seconds(1) + rng.below(des::seconds(600));
  return des::microseconds(rng.below(3));  // same-timestamp tie bursts
}

QueueReport run_queue_scenario() {
  constexpr std::size_t kPending = std::size_t{1} << 20;  // ~10^6 in flight
  constexpr std::uint64_t kReschedules = 4'000'000;

  struct Ticker {
    des::Simulation& sim;
    std::uint64_t remaining;
    void fire() {
      if (remaining == 0) return;
      --remaining;
      sim.schedule_after(skewed_delta(sim.rng()), [this] { fire(); });
    }
  };

  QueueReport rep;
  const auto t0 = std::chrono::steady_clock::now();
  des::Simulation sim;
  Ticker ticker{sim, kReschedules};
  for (std::size_t i = 0; i < kPending; ++i)
    sim.schedule_at(skewed_delta(sim.rng()), [&ticker] { ticker.fire(); });
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();

  rep.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  rep.events = sim.events_processed();
  rep.events_per_sec = static_cast<double>(rep.events) / rep.wall_seconds;
  const auto& q = sim.event_queue();
  rep.peak_depth = q.stats().peak_depth;
  rep.rung_spawns = q.stats().rung_spawns;
  rep.top_transfers = q.stats().top_transfers;
  rep.impl = q.impl_name();
  return rep;
}

int run_queue_report(const std::string& path) {
  QueueReport best;
  for (int i = 0; i < 3; ++i) {
    QueueReport r = run_queue_scenario();
    if (best.wall_seconds == 0 || r.wall_seconds < best.wall_seconds) best = r;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"scenario\": \"high-occupancy queue stress\",\n"
               "  \"queue_impl\": \"%s\",\n"
               "  \"pending_events\": 1048576,\n"
               "  \"wall_seconds\": %.6f,\n"
               "  \"events\": %llu,\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"peak_depth\": %llu,\n"
               "  \"rung_spawns\": %llu,\n"
               "  \"top_transfers\": %llu\n"
               "}\n",
               best.impl, best.wall_seconds,
               static_cast<unsigned long long>(best.events),
               best.events_per_sec,
               static_cast<unsigned long long>(best.peak_depth),
               static_cast<unsigned long long>(best.rung_spawns),
               static_cast<unsigned long long>(best.top_transfers));
  std::fclose(f);
  std::printf(
      "queue report (%s): %.3fs wall, %.0f events/s, peak depth %llu, "
      "%llu rung spawns, %llu top transfers -> %s\n",
      best.impl, best.wall_seconds, best.events_per_sec,
      static_cast<unsigned long long>(best.peak_depth),
      static_cast<unsigned long long>(best.rung_spawns),
      static_cast<unsigned long long>(best.top_transfers), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int procs = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      procs = std::atoi(argv[i] + 8);
      if (procs <= 0) {
        std::fprintf(stderr, "bad --procs value: %s\n", argv[i] + 8);
        return 1;
      }
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--queue-report", 14) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      return run_queue_report(eq != nullptr ? eq + 1
                                            : "BENCH_queue.json");
    }
    if (std::strncmp(argv[i], "--runtime-report", 16) == 0) {
      const char* eq = std::strchr(argv[i], '=');
      const int repeats = procs >= 4096 ? 2 : 3;
      return run_runtime_report(
          eq != nullptr ? eq + 1 : "BENCH_runtime.json", procs, repeats);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

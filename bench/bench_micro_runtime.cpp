// Microbenchmarks (google-benchmark) for the runtime substrate itself:
// fiber switching, sync primitives, the RPC engine, serialization, and the
// visualization kernels. These measure HOST wall time (how fast the
// simulator itself runs), not virtual time.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "apps/mandelbulb.hpp"
#include "common/archive.hpp"
#include "des/simulation.hpp"
#include "des/sync.hpp"
#include "net/network.hpp"
#include "render/render.hpp"
#include "rpc/engine.hpp"
#include "vis/filters.hpp"

namespace {

using namespace colza;

void BM_FiberSpawnAndRun(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    for (int i = 0; i < 100; ++i) sim.spawn("f", [] {});
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FiberSpawnAndRun);

void BM_FiberContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    sim.spawn("yielder", [&sim] {
      for (int i = 0; i < 1000; ++i) sim.yield();
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);  // 2 switches per yield
}
BENCHMARK(BM_FiberContextSwitch);

void BM_MutexLockUnlock(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    sim.spawn("locker", [&sim] {
      des::Mutex m(sim);
      for (int i = 0; i < 1000; ++i) {
        m.lock();
        m.unlock();
      }
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MutexLockUnlock);

void BM_RpcRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulation sim;
    net::Network net(sim);
    auto& ps = net.create_process(0);
    auto& pc = net.create_process(1);
    rpc::Engine server(ps, net::Profile::mona());
    rpc::Engine client(pc, net::Profile::mona());
    server.define("echo", [](const rpc::RequestInfo&, InArchive& in,
                             OutArchive& out) {
      std::int32_t v = 0;
      in.load(v);
      out.save(v);
      return Status::Ok();
    });
    pc.spawn("caller", [&] {
      for (int i = 0; i < 100; ++i) {
        auto r = client.call<std::int32_t>(server.self(), "echo",
                                           std::int32_t{i});
        benchmark::DoNotOptimize(r);
      }
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RpcRoundTrip);

void BM_SerializeDataset(benchmark::State& state) {
  vis::UniformGrid g;
  g.dims = {32, 32, 32};
  g.point_data.add(vis::DataArray::make<float>(
      "f", std::vector<float>(g.point_count(), 1.5f)));
  const vis::DataSet ds{g};
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto blob = vis::serialize_dataset(ds);
    bytes += blob.size();
    auto back = vis::deserialize_dataset(blob);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SerializeDataset);

void BM_MarchingTetrahedra(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  vis::UniformGrid g;
  g.dims = {n, n, n};
  std::vector<float> f(g.point_count());
  const vis::Vec3 c{static_cast<float>(n) / 2, static_cast<float>(n) / 2,
                    static_cast<float>(n) / 2};
  for (std::uint32_t k = 0; k < n; ++k)
    for (std::uint32_t j = 0; j < n; ++j)
      for (std::uint32_t i = 0; i < n; ++i)
        f[g.point_index(i, j, k)] = (g.point(i, j, k) - c).norm();
  g.point_data.add(vis::DataArray::make<float>("d", f));
  for (auto _ : state) {
    auto mesh = vis::isosurface(g, "d", static_cast<float>(n) / 3);
    benchmark::DoNotOptimize(mesh);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.cell_count()));
}
BENCHMARK(BM_MarchingTetrahedra)->Arg(16)->Arg(32);

void BM_Rasterize(benchmark::State& state) {
  vis::UniformGrid g;
  g.dims = {24, 24, 24};
  std::vector<float> f(g.point_count());
  for (std::uint32_t k = 0; k < 24; ++k)
    for (std::uint32_t j = 0; j < 24; ++j)
      for (std::uint32_t i = 0; i < 24; ++i)
        f[g.point_index(i, j, k)] =
            (g.point(i, j, k) - vis::Vec3{12, 12, 12}).norm();
  g.point_data.add(vis::DataArray::make<float>("d", f));
  const auto mesh = vis::isosurface(g, "d", 8.0f);
  const render::Camera cam = render::Camera::framing(mesh.bounds());
  render::FrameBuffer fb(256, 256);
  for (auto _ : state) {
    fb.clear();
    render::rasterize(fb, mesh, cam,
                      render::ColorMap{render::ColorMapKind::viridis, 0, 24});
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mesh.triangle_count()));
}
BENCHMARK(BM_Rasterize);

void BM_MandelbulbBlock(benchmark::State& state) {
  apps::MandelbulbParams p;
  p.nx = p.ny = p.nz = 16;
  p.total_blocks = 4;
  for (auto _ : state) {
    auto block = apps::mandelbulb_block(p, 1);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * 16);
}
BENCHMARK(BM_MandelbulbBlock);

}  // namespace

BENCHMARK_MAIN();

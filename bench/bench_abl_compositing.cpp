// Ablation: image compositing strategy (IceT design choice). Compares the
// tree, binary-swap and direct-send strategies across staging-area sizes --
// binary swap's bandwidth advantage is why IceT (and this reproduction's
// pipelines) default to it at scale.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "des/simulation.hpp"
#include "icet/icet.hpp"
#include "mona/mona.hpp"
#include "net/network.hpp"
#include "vis/communicator.hpp"

namespace {

using namespace colza;

struct Result {
  double ms = 0;
  double mib_sent = 0;
};

Result run(icet::Strategy strategy, int nprocs, int image_edge) {
  des::Simulation sim;
  net::Network net(sim);
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < nprocs; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i / 4));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p));
    addrs.push_back(p.id());
  }
  std::vector<std::unique_ptr<vis::MonaCommunicator>> comms(
      static_cast<std::size_t>(nprocs));
  std::vector<render::FrameBuffer> fbs(static_cast<std::size_t>(nprocs));
  Result result;
  des::Duration elapsed = 0;
  std::uint64_t bytes = 0;
  for (int i = 0; i < nprocs; ++i) {
    comms[static_cast<std::size_t>(i)] =
        std::make_unique<vis::MonaCommunicator>(
            insts[static_cast<std::size_t>(i)]->comm_create(addrs));
    auto& fb = fbs[static_cast<std::size_t>(i)];
    fb.resize(image_edge, image_edge);
    // ~60% active pixels, rank-dependent depths (a realistic composited
    // scene rather than fully dense or fully sparse).
    for (std::size_t p = 0; p < fb.pixel_count(); ++p) {
      if ((p * 2654435761u + static_cast<std::size_t>(i)) % 10 < 6) {
        fb.rgba[p * 4 + 0] = 0.5f;
        fb.rgba[p * 4 + 3] = 1.0f;
        fb.depth[p] = 0.1f + 0.8f * static_cast<float>(i) /
                                 static_cast<float>(nprocs);
      }
    }
  }
  for (int i = 0; i < nprocs; ++i) {
    procs[static_cast<std::size_t>(i)]->spawn("compose", [&, i] {
      auto vt = icet::make_vtable(*comms[static_cast<std::size_t>(i)]);
      const des::Time t0 = sim.now();
      auto r = icet::composite(fbs[static_cast<std::size_t>(i)], vt, strategy,
                               icet::CompositeOp::closest_depth);
      r.status().check();
      bytes += r->bytes_sent;
      if (i == 0) elapsed = sim.now() - t0;
    });
  }
  sim.run();
  result.ms = des::to_millis(elapsed);
  result.mib_sent = static_cast<double>(bytes) / (1024.0 * 1024.0);
  return result;
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Ablation -- image compositing strategies (IceT substitute)",
           "time and traffic of tree vs binary-swap vs direct at 256x256");

  Table table({"procs", "tree_ms", "bswap_ms", "direct_ms", "tree_MiB",
               "bswap_MiB", "direct_MiB"});
  for (int n : {2, 4, 8, 16, 32, 64}) {
    const Result tree = run(icet::Strategy::tree, n, 256);
    const Result bswap = run(icet::Strategy::binary_swap, n, 256);
    const Result direct = run(icet::Strategy::direct, n, 256);
    table.row({std::to_string(n), fmt_ms(tree.ms), fmt_ms(bswap.ms),
               fmt_ms(direct.ms), fmt("%.2f", tree.mib_sent),
               fmt("%.2f", bswap.mib_sent), fmt("%.2f", direct.mib_sent)});
  }
  table.print("abl_icet");
  return 0;
}

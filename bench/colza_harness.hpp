// Reusable in-simulation deployment for the pipeline benches (Figs 5-10):
// a Colza staging area of S servers plus C client processes that follow the
// paper's usage pattern -- client rank 0 drives activate / execute /
// deactivate, every client stages its blocks, and the clients coordinate
// through their own (application-side) MoNA communicator, mirroring how a
// real MPI simulation would use its own world communicator.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "colza/admin.hpp"
#include "colza/catalyst_backend.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "colza/server.hpp"
#include "common/arena.hpp"
#include "common/buffer_pool.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vis/data.hpp"

namespace colza::bench {

struct HarnessConfig {
  int clients = 4;
  int clients_per_node = 16;
  int servers = 4;
  int servers_per_node = 4;
  std::string pipeline_json;  // catalyst backend configuration
  // Server-side communication layer: MoNA (elastic) or Cray-MPICH (the
  // paper's "MPI" pipeline variant).
  net::Profile server_profile = net::Profile::mona();
  // Virtual compute time the simulation spends between in situ iterations
  // (0 = stage as fast as possible).
  des::Duration compute_between_iterations = 0;
  std::uint64_t seed = 33;
  // Observability (src/obs). Non-empty trace_path enables the virtual-time
  // tracer and writes a Chrome trace_event JSON there after run(); non-empty
  // metrics_path dumps the metrics registry (with one snapshot per
  // iteration) there. For byte-identical traces across runs, also set
  // fixed_scoped_charge so charge_scoped() costs are host-independent.
  std::string trace_path;
  std::string metrics_path;
  des::Duration fixed_scoped_charge = 0;
};

struct IterationTimes {
  std::uint64_t iteration = 0;
  des::Duration activate = 0;
  des::Duration stage = 0;  // max over clients (barrier to barrier)
  des::Duration execute = 0;
  des::Duration deactivate = 0;
  std::size_t servers = 0;
  [[nodiscard]] des::Duration total() const {
    return activate + stage + execute + deactivate;
  }
};

// Produces the blocks a client stages in one iteration.
using DataGen = std::function<std::vector<std::pair<std::uint64_t, vis::DataSet>>(
    int client_rank, std::uint64_t iteration)>;

// Called by client rank 0 before each iteration's activate (e.g. to trigger
// elastic scale-ups keyed on the iteration number, Fig 10).
using BeforeIteration = std::function<void(std::uint64_t iteration)>;
// Called by client rank 0 right after each iteration completes (e.g. to
// feed an AutoScaler with the measured times).
using AfterIteration = std::function<void(const IterationTimes&)>;

class ColzaPipelineHarness {
 public:
  ColzaPipelineHarness(const HarnessConfig& config)
      : config_(config),
        sim_(des::SimConfig{.seed = config.seed,
                            .fixed_scoped_charge = config.fixed_scoped_charge}),
        net_(sim_) {
    if (!config_.trace_path.empty() || !config_.metrics_path.empty()) {
      obs::MetricsRegistry::global().reset();
    }
    if (!config_.trace_path.empty()) {
      obs::Tracer::global().enable(sim_);
    }
    ServerConfig scfg;
    scfg.profile = config_.server_profile;
    // Fast, deterministic launches for pipeline benches: launch latency is
    // not what Figs 5-8 measure (Fig 4 has its own bench).
    LaunchModel instant{des::milliseconds(20), 0.0, des::milliseconds(20)};
    area_ = std::make_unique<StagingArea>(net_, scfg, instant, config_.seed);
    area_->launch_initial(config_.servers, /*base_node=*/1000);
    sim_.run_until(des::seconds(2));

    // Client processes + their application-side communicator.
    std::vector<net::ProcId> client_addrs;
    for (int c = 0; c < config_.clients; ++c) {
      auto& p = net_.create_process(
          static_cast<net::NodeId>(c / config_.clients_per_node));
      client_procs_.push_back(&p);
      client_insts_.push_back(std::make_unique<mona::Instance>(p));
      clients_.push_back(std::make_unique<Client>(p));
      client_addrs.push_back(p.id());
    }
    for (int c = 0; c < config_.clients; ++c) {
      client_comms_.push_back(
          client_insts_[static_cast<std::size_t>(c)]->comm_create(
              client_addrs));
    }

    // Deploy the pipeline on the founding servers.
    for (const auto& s : area_->servers()) {
      s->create_pipeline("render", "catalyst", config_.pipeline_json).check();
    }
  }

  [[nodiscard]] StagingArea& area() noexcept { return *area_; }
  [[nodiscard]] des::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] net::Network& net() noexcept { return net_; }
  // The application-side communicator of a client rank (usable from inside
  // the data generator, e.g. for Gray-Scott halo exchange).
  [[nodiscard]] mona::Communicator& client_comm(int rank) noexcept {
    return *client_comms_[static_cast<std::size_t>(rank)];
  }

  // Adds one server on `node` after the modeled launch latency; the new
  // daemon joins via SSG and instantiates the pipeline locally.
  void add_server(net::NodeId node) {
    area_->launch_one(node, [this](Server& s) {
      s.create_pipeline("render", "catalyst", config_.pipeline_json).check();
    });
  }

  // Runs `iterations` in situ iterations; returns rank-0 timings.
  std::vector<IterationTimes> run(int iterations, const DataGen& gen,
                                  const BeforeIteration& before = {},
                                  const AfterIteration& after = {}) {
    std::vector<IterationTimes> results;
    const int nclients = config_.clients;
    auto barrier = [&](int rank) {
      client_comms_[static_cast<std::size_t>(rank)]->barrier().check();
    };

    for (int c = 0; c < nclients; ++c) {
      client_procs_[static_cast<std::size_t>(c)]->spawn(
          "client" + std::to_string(c), [&, c] {
            auto h = DistributedPipelineHandle::lookup(
                *clients_[static_cast<std::size_t>(c)],
                area_->bootstrap().contacts(), "render");
            h.status().check();
            auto& comm = *client_comms_[static_cast<std::size_t>(c)];

            for (int iter = 1; iter <= iterations; ++iter) {
              const auto it = static_cast<std::uint64_t>(iter);
              // The simulation computes...
              if (config_.compute_between_iterations > 0)
                sim_.charge(config_.compute_between_iterations);
              // ...then generates its blocks. Generators charge their own
              // compute (they may communicate, e.g. halo exchanges, which
              // must not run under a single charge_scoped measurement).
              auto blocks = gen(c, it);

              IterationTimes times;
              times.iteration = it;
              barrier(c);

              if (c == 0) {
                if (before) before(it);
                const des::Time t0 = sim_.now();
                {
                  obs::SpanScope phase("phase.activate", "phase");
                  h->activate(it).check();
                }
                times.activate = sim_.now() - t0;
                // Share the agreed view with the other clients.
                std::vector<net::ProcId> view = h->view();
                std::uint64_t n = view.size(), hash = h->view_hash();
                std::span<std::byte> nspan{reinterpret_cast<std::byte*>(&n),
                                           8};
                comm.bcast(nspan, 0).check();
                view.resize(n);
                comm.bcast(std::span<std::byte>(
                               reinterpret_cast<std::byte*>(view.data()),
                               n * sizeof(net::ProcId)),
                           0)
                    .check();
                std::span<std::byte> hspan{
                    reinterpret_cast<std::byte*>(&hash), 8};
                comm.bcast(hspan, 0).check();
              } else {
                std::uint64_t n = 0, hash = 0;
                std::span<std::byte> nspan{reinterpret_cast<std::byte*>(&n),
                                           8};
                comm.bcast(nspan, 0).check();
                std::vector<net::ProcId> view(n);
                comm.bcast(std::span<std::byte>(
                               reinterpret_cast<std::byte*>(view.data()),
                               n * sizeof(net::ProcId)),
                           0)
                    .check();
                std::span<std::byte> hspan{
                    reinterpret_cast<std::byte*>(&hash), 8};
                comm.bcast(hspan, 0).check();
                h->set_view(std::move(view), hash);
              }

              // Stage phase, bracketed by barriers so rank 0 measures the
              // slowest client. Rank 0's phase span covers the same
              // barrier-to-barrier interval the reported time does.
              barrier(c);
              std::optional<obs::SpanScope> stage_phase;
              if (c == 0) stage_phase.emplace("phase.stage", "phase");
              const des::Time s0 = sim_.now();
              for (auto& [block_id, ds] : blocks) {
                h->stage(it, block_id, ds).check();
              }
              barrier(c);
              times.stage = sim_.now() - s0;
              stage_phase.reset();

              if (c == 0) {
                des::Time t0 = sim_.now();
                {
                  obs::SpanScope phase("phase.execute", "phase");
                  h->execute(it).check();
                }
                times.execute = sim_.now() - t0;
                t0 = sim_.now();
                {
                  obs::SpanScope phase("phase.deactivate", "phase");
                  h->deactivate(it).check();
                }
                times.deactivate = sim_.now() - t0;
                times.servers = h->server_count();
                results.push_back(times);
                if (after) after(times);
                if (!config_.metrics_path.empty()) {
                  record_runtime_gauges();
                  obs::MetricsRegistry::global().snapshot(
                      "iteration-" + std::to_string(it));
                }
              }
              barrier(c);
            }
          });
    }
    sim_.run();
    finish_observability();
    return results;
  }

  // Samples the DES-runtime counters (event queue, slab arenas, batched
  // delivery) into gauges so each per-iteration snapshot carries them.
  void record_runtime_gauges() {
    auto& reg = obs::MetricsRegistry::global();
    const auto& q = sim_.event_queue();
    reg.gauge("runtime.queue.depth").set(static_cast<double>(q.size()));
    reg.gauge("runtime.queue.peak_depth")
        .set(static_cast<double>(q.stats().peak_depth));
    reg.gauge("runtime.queue.rung_spawns")
        .set(static_cast<double>(q.stats().rung_spawns));
    reg.gauge("runtime.queue.top_transfers")
        .set(static_cast<double>(q.stats().top_transfers));
    const auto& arenas = common::Arena::totals();
    reg.gauge("runtime.arena.bytes_in_use")
        .set(static_cast<double>(arenas.bytes_in_use));
    reg.gauge("runtime.arena.high_water")
        .set(static_cast<double>(arenas.high_water));
    reg.gauge("runtime.arena.slab_bytes")
        .set(static_cast<double>(arenas.slab_bytes));
    reg.gauge("runtime.arena.resets").set(static_cast<double>(arenas.resets));
    const auto& del = net::DeliveryStats::global();
    reg.gauge("runtime.delivery.batches")
        .set(static_cast<double>(del.batches));
    reg.gauge("runtime.delivery.messages")
        .set(static_cast<double>(del.messages));
    reg.gauge("runtime.delivery.max_batch")
        .set(static_cast<double>(del.max_batch));
  }

  // Writes the trace / metrics files configured in HarnessConfig. Called
  // automatically at the end of run(); idempotent (later calls rewrite the
  // same files with the same content).
  void finish_observability() {
    if (!config_.trace_path.empty()) {
      obs::Tracer::global().disable();
      obs::Tracer::global().write_chrome_trace(config_.trace_path);
    }
    if (!config_.metrics_path.empty()) {
      auto& reg = obs::MetricsRegistry::global();
      // BufferPool keeps its own counters (common/ cannot depend on obs/);
      // sample them into gauges at export time.
      auto& pool = common::BufferPool::global();
      const double hits = static_cast<double>(pool.hits());
      const double misses = static_cast<double>(pool.misses());
      reg.gauge("buffer_pool.hits").set(hits);
      reg.gauge("buffer_pool.misses").set(misses);
      reg.gauge("buffer_pool.hit_rate")
          .set(hits + misses > 0 ? hits / (hits + misses) : 0.0);
      std::FILE* f = std::fopen(config_.metrics_path.c_str(), "wb");
      if (f != nullptr) {
        const std::string out = reg.dump_json();
        std::fwrite(out.data(), 1, out.size(), f);
        std::fclose(f);
      }
    }
  }

 private:
  HarnessConfig config_;
  des::Simulation sim_;
  net::Network net_;
  std::unique_ptr<StagingArea> area_;
  std::vector<net::Process*> client_procs_;
  std::vector<std::unique_ptr<mona::Instance>> client_insts_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::shared_ptr<mona::Communicator>> client_comms_;
};

}  // namespace colza::bench

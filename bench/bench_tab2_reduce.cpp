// Table II: time (in milliseconds) to complete 1000 binary-xor reduce
// operations on 512 processes (32 nodes x 16 ranks) using Cray-mpich,
// OpenMPI, and MoNA.
//
// The shape to reproduce (paper S III-C1): Cray-mpich stays flat; MoNA is a
// constant ~2.4-4.3x slower; OpenMPI degrades catastrophically at >= 16 KiB
// ("1800x slower than Cray-mpich") because its tuned collectives fall back
// to linear algorithms whose rendezvous handshakes serialize at the root.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "des/simulation.hpp"
#include "mona/mona.hpp"
#include "net/network.hpp"

namespace {

using namespace colza;

constexpr int kProcs = 512;
constexpr int kPerNode = 16;

struct Lib {
  const char* name;
  net::Profile profile;
  bool linear_fallback;
};

double reduce_ms(const Lib& lib, std::size_t bytes, int reps) {
  des::Simulation sim;
  net::Network net(sim);
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < kProcs; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i / kPerNode));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p, lib.profile));
    addrs.push_back(p.id());
  }
  des::Duration elapsed = 0;
  const std::size_t count = bytes / sizeof(std::uint64_t);
  std::vector<std::shared_ptr<mona::Communicator>> comms;
  for (int i = 0; i < kProcs; ++i) {
    auto c = insts[static_cast<std::size_t>(i)]->comm_create(addrs);
    c->policy.linear_fallback = lib.linear_fallback;
    comms.push_back(std::move(c));
  }
  for (int i = 0; i < kProcs; ++i) {
    procs[static_cast<std::size_t>(i)]->spawn("rank", [&, i] {
      auto& comm = *comms[static_cast<std::size_t>(i)];
      std::vector<std::uint64_t> in(count, static_cast<std::uint64_t>(i));
      std::vector<std::uint64_t> out(count);
      std::span<const std::byte> is{
          reinterpret_cast<const std::byte*>(in.data()), bytes};
      std::span<std::byte> os{reinterpret_cast<std::byte*>(out.data()),
                              bytes};
      const auto op = mona::op_bxor<std::uint64_t>();
      const des::Time t0 = sim.now();
      for (int r = 0; r < reps; ++r) {
        comm.reduce(is, os, count, op, 0).check();
      }
      comm.barrier().check();
      if (i == 0) elapsed = sim.now() - t0;
    });
  }
  sim.run();
  return des::to_millis(elapsed) * (1000.0 / reps);
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Table II -- binary-xor reduce on 512 processes",
           "time (ms) for 1000 reduce ops, 32 nodes x 16 ranks (paper "
           "Table II)");
  note("paper values: cray 79.2..122.8; openmpi 204.8 -> 219104.5 (collapse "
       "at >=16 KiB); mona 225.1..527.9");
  note("rep counts are reduced for large payloads and scaled to 1000 ops");

  const Lib libs[] = {
      {"cray-mpich", net::Profile::cray_mpich(), false},
      {"openmpi", net::Profile::openmpi(), true},
      {"mona", net::Profile::mona(), false},
  };
  const std::vector<std::size_t> sizes{8, 128, 2048, 16 * 1024, 32 * 1024};

  Table table({"size", "cray-mpich", "openmpi", "mona"});
  for (std::size_t size : sizes) {
    std::vector<std::string> row{format_size(size)};
    for (const Lib& lib : libs) {
      const int reps = size >= 16 * 1024 ? 10 : (size >= 2048 ? 25 : 50);
      row.push_back(fmt_ms(reduce_ms(lib, size, reps)));
    }
    table.row(row);
  }
  table.print("tab2");
  return 0;
}

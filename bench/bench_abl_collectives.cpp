// Ablation: collective algorithm choice in MoNA -- binomial-tree reduce vs
// the linear (root-sequential) fallback, and bcast/allreduce scaling.
// Quantifies why the OpenMPI fallback pathology of Table II is so costly and
// documents the crossover behaviour of the implemented algorithms.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "des/simulation.hpp"
#include "mona/mona.hpp"
#include "net/network.hpp"

namespace {

using namespace colza;

enum class Op { reduce_tree, reduce_linear, bcast, allreduce, barrier };

double run_op(Op op, int nprocs, std::size_t bytes, int reps = 20) {
  des::Simulation sim;
  net::Network net(sim);
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < nprocs; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i / 16));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p));
    addrs.push_back(p.id());
  }
  std::vector<std::shared_ptr<mona::Communicator>> comms;
  for (int i = 0; i < nprocs; ++i) {
    auto c = insts[static_cast<std::size_t>(i)]->comm_create(addrs);
    c->policy.linear_fallback = (op == Op::reduce_linear);
    c->policy.linear_threshold = 0;
    comms.push_back(std::move(c));
  }
  des::Duration elapsed = 0;
  const std::size_t count = bytes / 8;
  for (int i = 0; i < nprocs; ++i) {
    procs[static_cast<std::size_t>(i)]->spawn("rank", [&, i] {
      auto& comm = *comms[static_cast<std::size_t>(i)];
      std::vector<std::uint64_t> in(count, 1), out(count);
      std::span<const std::byte> is{
          reinterpret_cast<const std::byte*>(in.data()), bytes};
      std::span<std::byte> os{reinterpret_cast<std::byte*>(out.data()), bytes};
      std::span<std::byte> data{reinterpret_cast<std::byte*>(in.data()),
                                bytes};
      const auto sum = mona::op_sum<std::uint64_t>();
      const des::Time t0 = sim.now();
      for (int r = 0; r < reps; ++r) {
        switch (op) {
          case Op::reduce_tree:
          case Op::reduce_linear:
            comm.reduce(is, os, count, sum, 0).check();
            break;
          case Op::bcast: comm.bcast(data, 0).check(); break;
          case Op::allreduce: comm.allreduce(is, os, count, sum).check(); break;
          case Op::barrier: comm.barrier().check(); break;
        }
      }
      comm.barrier().check();
      if (i == 0) elapsed = sim.now() - t0;
    });
  }
  sim.run();
  return des::to_millis(elapsed) / reps;
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Ablation -- MoNA collective algorithms",
           "per-op cost (ms) of tree vs linear reduce, bcast, allreduce, "
           "barrier vs #procs (design-choice ablation, DESIGN.md)");

  constexpr std::size_t kBytes = 16 * 1024;
  Table table({"procs", "reduce_tree_ms", "reduce_linear_ms", "linear_over_tree",
               "bcast_ms", "allreduce_ms", "barrier_ms"});
  for (int n : {4, 8, 16, 32, 64, 128, 256}) {
    const double tree = run_op(Op::reduce_tree, n, kBytes);
    const double linear = run_op(Op::reduce_linear, n, kBytes);
    table.row({std::to_string(n), fmt_ms(tree), fmt_ms(linear),
               fmt("%.1fx", linear / tree),
               fmt_ms(run_op(Op::bcast, n, kBytes)),
               fmt_ms(run_op(Op::allreduce, n, kBytes)),
               fmt_ms(run_op(Op::barrier, n, 8))});
  }
  table.print("abl_coll");
  return 0;
}

// Viewer fan-out: frames/sec served, cache hit rate, and bytes/viewer as the
// observer population grows from 1k to 1M sessions over 16 camera views
// (docs/viewer.md). The tier renders each (pipeline, iteration, camera)
// exactly once -- single-flight -- so the render count stays at
// iterations x views no matter how many sessions watch, while a no-cache
// baseline (every session forces its own render: each watches a private
// camera) pays one render per delivered frame.
//
// Reported per population: renders, delivered frames, cache hit rate,
// frames/sec of virtual service time, bytes per viewer, and host wall time.
// Also emits BENCH_viewer.json (path = argv[1], default ./BENCH_viewer.json).
//
// Acceptance gates (exit 1 on failure): at 100k sessions the cache hit rate
// is >= 95% and renders == iterations x views exactly; the no-cache baseline
// renders == sessions x iterations (one render per viewer-frame).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "rpc/engine.hpp"
#include "viewer/viewer.hpp"

namespace {

using namespace colza;
using namespace colza::bench;

constexpr std::uint32_t kViews = 16;
constexpr std::uint64_t kIterations = 5;

// Deterministic synthetic frames: unique pixels per (iteration, camera) so
// deltas carry real entropy, 32x32 RGBA (4 KiB raw keyframes).
viewer::FrameImage synth_frame(std::uint64_t iteration, std::uint32_t camera,
                               double /*param*/) {
  viewer::FrameImage img;
  img.width = img.height = 32;
  img.rgba.resize(static_cast<std::size_t>(img.width) * img.height * 4);
  std::uint64_t x = iteration * 1000003 + camera + 1;
  for (auto& b : img.rgba) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    b = static_cast<std::uint8_t>(x >> 56);
  }
  return img;
}

struct CaseResult {
  std::size_t sessions = 0;
  std::uint64_t renders = 0;
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t skips = 0;
  double hit_rate = 0.0;
  double virtual_sec = 0.0;  // virtual time from first publish to quiesce
  double wall_ms = 0.0;      // host wall clock for the whole case

  [[nodiscard]] double frames_per_sec() const {
    return virtual_sec == 0.0 ? 0.0
                              : static_cast<double>(frames) / virtual_sec;
  }
  [[nodiscard]] double bytes_per_viewer() const {
    return sessions == 0 ? 0.0
                         : static_cast<double>(bytes) /
                               static_cast<double>(sessions);
  }
};

// One fan-out case. `shared_views` = the cached configuration (sessions
// spread over kViews streams); false = the no-cache baseline where every
// session subscribes to a private camera, so no frame is ever reusable and
// each delivery costs its own render.
CaseResult run_case(std::size_t sessions, bool shared_views) {
  const auto wall_start = std::chrono::steady_clock::now();

  des::Simulation sim(des::SimConfig{.seed = 1111});
  net::Network net(sim);
  net::Process& proc = net.create_process(1);
  rpc::Engine engine(proc, net::Profile::mona());
  viewer::ViewerTier tier(proc, engine);
  tier.set_producer("sim", synth_frame);

  CaseResult res;
  res.sessions = sessions;
  proc.spawn("fanout", [&] {
    for (std::size_t i = 0; i < sessions; ++i) {
      const std::uint64_t id = tier.connect(static_cast<std::uint32_t>(i % 3));
      const std::uint32_t camera =
          shared_views ? static_cast<std::uint32_t>(i % kViews)
                       : static_cast<std::uint32_t>(i);
      tier.subscribe(id, "sim", camera).check();
    }
    const des::Time started = sim.now();
    for (std::uint64_t it = 1; it <= kIterations; ++it) {
      tier.publish("sim", it);
      sim.sleep_for(des::seconds(1));
    }
    tier.quiesce();
    res.virtual_sec =
        static_cast<double>(sim.now() - started) / des::seconds(1);
    res.renders = tier.renders_total();
    res.frames = tier.frames_delivered();
    res.bytes = tier.bytes_delivered();
    res.skips = tier.skips_total();
    res.hit_rate = tier.cache_hit_rate();
  });
  sim.run();

  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return res;
}

void json_case(std::FILE* f, const std::string& key, const CaseResult& r,
               bool last = false) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"sessions\": %zu,\n"
               "    \"renders\": %llu,\n"
               "    \"frames_delivered\": %llu,\n"
               "    \"frames_per_sec\": %.1f,\n"
               "    \"cache_hit_rate\": %.6f,\n"
               "    \"bytes_per_viewer\": %.1f,\n"
               "    \"skips\": %llu,\n"
               "    \"wall_ms\": %.1f\n"
               "  }%s\n",
               key.c_str(), r.sessions,
               static_cast<unsigned long long>(r.renders),
               static_cast<unsigned long long>(r.frames), r.frames_per_sec(),
               r.hit_rate, r.bytes_per_viewer(),
               static_cast<unsigned long long>(r.skips), r.wall_ms,
               last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  headline("Viewer fan-out -- frame cache + single-flight render vs observer "
           "population",
           "the elastic-visualization delivery concern of S V: many "
           "observers of few views must not multiply render or simulation "
           "cost");

  const std::vector<std::size_t> populations = {1'000, 10'000, 100'000,
                                                1'000'000};
  std::vector<CaseResult> cached;
  cached.reserve(populations.size());
  for (std::size_t n : populations) {
    cached.push_back(run_case(n, /*shared_views=*/true));
    note("cached %zu sessions done (%.0f ms host)", n, cached.back().wall_ms);
  }
  // The no-cache baseline is measured at 10k sessions (1M private streams
  // would be pure render grind) and extrapolates linearly -- every
  // viewer-frame is a render, so cost is exactly sessions x iterations.
  const CaseResult nocache = run_case(10'000, /*shared_views=*/false);
  note("no-cache baseline 10000 sessions done (%.0f ms host)",
       nocache.wall_ms);

  // Host wall time stays out of the table: the csv block must be
  // byte-identical across runs (the standard determinism probe); the
  // per-case note lines above carry the wall numbers instead.
  Table table({"config", "sessions", "renders", "frames", "hit_rate",
               "frames_per_vsec", "bytes_per_viewer", "skips"});
  auto row = [&](const char* name, const CaseResult& r) {
    table.row({name, std::to_string(r.sessions), std::to_string(r.renders),
               std::to_string(r.frames), fmt("%.4f", r.hit_rate),
               fmt("%.0f", r.frames_per_sec()),
               fmt("%.0f", r.bytes_per_viewer()), std::to_string(r.skips)});
  };
  for (const CaseResult& r : cached) row("cache", r);
  row("no-cache", nocache);
  table.print("fig11_viewer_fanout");

  const CaseResult& big = cached[2];  // the 100k acceptance point
  note("single-flight holds: every cached row renders %llu frames "
       "(%llu iterations x %u views) regardless of population",
       static_cast<unsigned long long>(kIterations * kViews),
       static_cast<unsigned long long>(kIterations),
       static_cast<unsigned>(kViews));
  note("at 100k sessions the cache serves %.2f%% of frame requests; the "
       "no-cache baseline pays %llu renders for 10k sessions (%.0fx the "
       "cached render count at 10x the population of views served)",
       big.hit_rate * 100, static_cast<unsigned long long>(nocache.renders),
       static_cast<double>(nocache.renders) /
           static_cast<double>(big.renders));

  const char* path = argc > 1 ? argv[1] : "BENCH_viewer.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"benchmark\": \"bench_fig11_viewer_fanout\",\n"
      "  \"scenario\": \"one viewer tier, %llu published iterations of one "
      "pipeline over %u camera views (32x32 RGBA frames, keyframe every 4); "
      "sessions split evenly across gold/silver/bronze quality classes; "
      "no_cache_10k gives every session a private camera so each delivered "
      "frame costs its own render\",\n"
      "  \"machine\": \"container, RelWithDebInfo -O2, single thread, "
      "deterministic virtual time (seed 1111)\",\n",
      static_cast<unsigned long long>(kIterations),
      static_cast<unsigned>(kViews));
  const char* keys[] = {"cache_1k", "cache_10k", "cache_100k", "cache_1m"};
  for (std::size_t i = 0; i < cached.size(); ++i) {
    json_case(f, keys[i], cached[i]);
  }
  json_case(f, "no_cache_10k", nocache);
  std::fprintf(
      f,
      "  \"notes\": \"Acceptance: cache_100k.cache_hit_rate >= 0.95 and "
      "every cache row's renders == %llu (iterations x views, single-flight "
      "-- one render per (pipeline, iteration, camera) however many sessions "
      "watch); no_cache_10k.renders == sessions x iterations. frames_per_sec "
      "is delivered frames over virtual service time; bytes_per_viewer "
      "counts encoded wire bytes (keyframe + XOR-RLE deltas), so it measures "
      "what the delta codec actually ships.\"\n"
      "}\n",
      static_cast<unsigned long long>(kIterations * kViews));
  std::fclose(f);
  std::printf("\nwrote %s\n", path);

  // Acceptance gates, enforced so CI catches fan-out regressions.
  bool ok = true;
  for (const CaseResult& r : cached) {
    if (r.renders != kIterations * kViews) {
      std::fprintf(stderr, "FAIL: %zu sessions rendered %llu frames, want "
                           "%llu (single-flight broken)\n",
                   r.sessions, static_cast<unsigned long long>(r.renders),
                   static_cast<unsigned long long>(kIterations * kViews));
      ok = false;
    }
  }
  if (big.hit_rate < 0.95) {
    std::fprintf(stderr, "FAIL: 100k-session hit rate %.4f < 0.95\n",
                 big.hit_rate);
    ok = false;
  }
  if (nocache.renders != nocache.sessions * kIterations) {
    std::fprintf(stderr, "FAIL: no-cache baseline rendered %llu, want "
                         "sessions x iterations = %llu\n",
                 static_cast<unsigned long long>(nocache.renders),
                 static_cast<unsigned long long>(nocache.sessions *
                                                 kIterations));
    ok = false;
  }
  return ok ? 0 : 1;
}

// Fig 1a: growth of the Deep Water Impact dataset over the run -- number of
// cells in the unstructured mesh and the corresponding serialized size, per
// (renumbered) iteration 1..30.
//
// The original dataset reaches ~470M cells / ~28 GiB; the proxy reproduces
// the monotone super-linear growth SHAPE at a laptop-friendly scale (see
// DESIGN.md, substitution table).
#include <cstdio>

#include "apps/dwi_proxy.hpp"
#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "vis/data.hpp"

int main() {
  using namespace colza;
  using namespace colza::bench;
  headline("Fig 1a -- Deep Water Impact proxy dataset growth",
           "cells and serialized size per iteration (paper Fig 1a)");

  apps::DwiParams params;
  params.blocks = 64;

  Table table({"iteration", "cells", "bytes", "size", "growth_vs_iter1"});
  std::size_t first_cells = 0;
  for (int t = 1; t <= params.total_iterations; ++t) {
    // Generate the real blocks and measure the actual serialized size (what
    // the paper reports as VTK file size).
    std::size_t cells = 0, bytes = 0;
    for (std::uint32_t b = 0; b < params.blocks; ++b) {
      vis::UnstructuredGrid g = apps::dwi_block(params, t, b);
      cells += g.cell_count();
      bytes += vis::serialize_dataset(vis::DataSet{std::move(g)}).size();
    }
    if (t == 1) first_cells = cells;
    table.row({std::to_string(t), std::to_string(cells),
               std::to_string(bytes), format_size(bytes),
               fmt("%.1fx", static_cast<double>(cells) /
                                static_cast<double>(first_cells))});
  }
  table.print("fig01");
  return 0;
}

// Fig 9: exercising elasticity with the Mandelbulb application -- Colza is
// resized from 2 to 8 nodes (one new node every 60 virtual seconds) while
// the application keeps iterating. The bench reports, per iteration, the
// durations of the activate / stage / execute / deactivate calls and the
// number of Colza servers in use.
//
// Expected shape (paper Fig 9): execute time steps DOWN at each resize, with
// a one-iteration spike when a new node joins (its pipeline must initialize
// VTK); activate / stage / deactivate stay negligible (paper: ~4 ms, ~100 ms
// and ~0.6 ms on average).
#include <cstdio>

#include "apps/mandelbulb.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"

int main() {
  using namespace colza;
  using namespace colza::bench;
  headline("Fig 9 -- elasticity with Mandelbulb, 2 -> 8 Colza nodes",
           "per-call durations while adding a node every 60 s (paper Fig 9)");

  constexpr int kClients = 16;
  constexpr int kBlocksPerClient = 4;
  constexpr int kIterations = 40;

  HarnessConfig cfg;
  cfg.servers = 2;
  cfg.servers_per_node = 1;  // paper: 1 Colza process per node here
  cfg.clients = kClients;
  cfg.clients_per_node = 16;
  cfg.pipeline_json = R"({"preset":"mandelbulb","width":128,"height":128})";
  cfg.compute_between_iterations = des::seconds(10);

  apps::MandelbulbParams mb;
  mb.nx = mb.ny = mb.nz = 16;
  mb.total_blocks = kClients * kBlocksPerClient;

  ColzaPipelineHarness harness(cfg);
  auto& sim = harness.sim();

  // One new Colza node every 60 s, up to 8 (paper S III-E1).
  for (int add = 0; add < 6; ++add) {
    sim.schedule_at(des::seconds(60) * static_cast<std::uint64_t>(add + 1),
                    [&harness, add] {
                      harness.add_server(static_cast<net::NodeId>(10 + add));
                    });
  }

  auto gen = [&](int client, std::uint64_t) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (int b = 0; b < kBlocksPerClient; ++b) {
      const auto id = static_cast<std::uint64_t>(client * kBlocksPerClient + b);
      blocks.emplace_back(id, sim.charge_scoped([&] {
        return vis::DataSet{
            apps::mandelbulb_block(mb, static_cast<std::uint32_t>(id))};
      }));
    }
    return blocks;
  };
  auto times = harness.run(kIterations, gen);

  Table table({"iteration", "servers", "activate_ms", "stage_ms",
               "execute_ms", "deactivate_ms"});
  double act_sum = 0, stage_sum = 0, deact_sum = 0;
  for (const auto& t : times) {
    table.row({std::to_string(t.iteration), std::to_string(t.servers),
               fmt_ms(des::to_millis(t.activate)),
               fmt_ms(des::to_millis(t.stage)),
               fmt_ms(des::to_millis(t.execute)),
               fmt_ms(des::to_millis(t.deactivate))});
    act_sum += des::to_millis(t.activate);
    stage_sum += des::to_millis(t.stage);
    deact_sum += des::to_millis(t.deactivate);
  }
  table.print("fig09");
  std::printf("\naverages: activate %.2f ms, stage %.2f ms, deactivate "
              "%.3f ms (paper: ~4 ms, ~100 ms, ~0.6 ms)\n",
              act_sum / static_cast<double>(times.size()),
              stage_sum / static_cast<double>(times.size()),
              deact_sum / static_cast<double>(times.size()));
  return 0;
}

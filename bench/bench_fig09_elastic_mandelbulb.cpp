// Fig 9: exercising elasticity with the Mandelbulb application -- Colza is
// resized from 2 to 8 nodes (one new node every 60 virtual seconds) while
// the application keeps iterating. The bench reports, per iteration, the
// durations of the activate / stage / execute / deactivate calls and the
// number of Colza servers in use.
//
// Expected shape (paper Fig 9): execute time steps DOWN at each resize, with
// a one-iteration spike when a new node joins (its pipeline must initialize
// VTK); activate / stage / deactivate stay negligible (paper: ~4 ms, ~100 ms
// and ~0.6 ms on average).
//
// Observability: `--trace out.json` writes a Chrome trace_event file whose
// per-phase span sums reproduce the table's totals (verified below), and
// `--metrics out.json` dumps the metrics registry with one snapshot per
// iteration. Tracing pins charge_scoped costs (fixed_scoped_charge) so two
// runs at the same seed produce byte-identical trace files.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "apps/mandelbulb.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace colza;
  using namespace colza::bench;

  std::string trace_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace out.json] [--metrics out.json]\n",
                   argv[0]);
      return 2;
    }
  }

  headline("Fig 9 -- elasticity with Mandelbulb, 2 -> 8 Colza nodes",
           "per-call durations while adding a node every 60 s (paper Fig 9)");

  constexpr int kClients = 16;
  constexpr int kBlocksPerClient = 4;
  constexpr int kIterations = 40;

  HarnessConfig cfg;
  cfg.servers = 2;
  cfg.servers_per_node = 1;  // paper: 1 Colza process per node here
  cfg.clients = kClients;
  cfg.clients_per_node = 16;
  cfg.pipeline_json = R"({"preset":"mandelbulb","width":128,"height":128})";
  cfg.compute_between_iterations = des::seconds(10);
  cfg.trace_path = trace_path;
  cfg.metrics_path = metrics_path;
  if (!trace_path.empty()) {
    // Host-independent charge_scoped costs: the virtual timeline (and hence
    // the trace bytes) depend only on the seed.
    cfg.fixed_scoped_charge = des::milliseconds(2);
  }

  apps::MandelbulbParams mb;
  mb.nx = mb.ny = mb.nz = 16;
  mb.total_blocks = kClients * kBlocksPerClient;

  ColzaPipelineHarness harness(cfg);
  auto& sim = harness.sim();

  // One new Colza node every 60 s, up to 8 (paper S III-E1).
  for (int add = 0; add < 6; ++add) {
    sim.schedule_at(des::seconds(60) * static_cast<std::uint64_t>(add + 1),
                    [&harness, add] {
                      harness.add_server(static_cast<net::NodeId>(10 + add));
                    });
  }

  auto gen = [&](int client, std::uint64_t) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (int b = 0; b < kBlocksPerClient; ++b) {
      const auto id = static_cast<std::uint64_t>(client * kBlocksPerClient + b);
      blocks.emplace_back(id, sim.charge_scoped([&] {
        return vis::DataSet{
            apps::mandelbulb_block(mb, static_cast<std::uint32_t>(id))};
      }));
    }
    return blocks;
  };
  auto times = harness.run(kIterations, gen);

  Table table({"iteration", "servers", "activate_ms", "stage_ms",
               "execute_ms", "deactivate_ms"});
  double act_sum = 0, stage_sum = 0, deact_sum = 0;
  for (const auto& t : times) {
    table.row({std::to_string(t.iteration), std::to_string(t.servers),
               fmt_ms(des::to_millis(t.activate)),
               fmt_ms(des::to_millis(t.stage)),
               fmt_ms(des::to_millis(t.execute)),
               fmt_ms(des::to_millis(t.deactivate))});
    act_sum += des::to_millis(t.activate);
    stage_sum += des::to_millis(t.stage);
    deact_sum += des::to_millis(t.deactivate);
  }
  table.print("fig09");
  std::printf("\naverages: activate %.2f ms, stage %.2f ms, deactivate "
              "%.3f ms (paper: ~4 ms, ~100 ms, ~0.6 ms)\n",
              act_sum / static_cast<double>(times.size()),
              stage_sum / static_cast<double>(times.size()),
              deact_sum / static_cast<double>(times.size()));

  if (!trace_path.empty()) {
    // Cross-check the trace against the table: the summed duration of the
    // rank-0 phase spans must equal the totals reported above (the spans
    // bracket exactly the measured intervals).
    double exec_sum = 0;
    for (const auto& t : times) exec_sum += des::to_millis(t.execute);
    // End events carry neither name nor category (Chrome trace format), so
    // match them to their begin by span id.
    std::map<std::uint64_t, std::pair<des::Time, std::string>> open;
    std::map<std::string, double> span_ms;
    for (const auto& e : obs::Tracer::global().events()) {
      if (e.phase == obs::TraceEvent::Phase::begin &&
          std::strcmp(e.cat, "phase") == 0) {
        open[e.span_id] = {e.ts, e.name};
      } else if (e.phase == obs::TraceEvent::Phase::end) {
        auto it = open.find(e.span_id);
        if (it != open.end()) {
          span_ms[it->second.second] += des::to_millis(e.ts - it->second.first);
          open.erase(it);
        }
      }
    }
    std::printf("\ntrace written to %s\n", trace_path.c_str());
    bool ok = true;
    const std::pair<const char*, double> expected[] = {
        {"phase.activate", act_sum},
        {"phase.stage", stage_sum},
        {"phase.execute", exec_sum},
        {"phase.deactivate", deact_sum}};
    for (const auto& [name, want] : expected) {
      const double got = span_ms[name];
      const bool match = std::abs(got - want) < 1e-6;
      ok = ok && match;
      std::printf("  %-16s span sum %10.3f ms  table sum %10.3f ms  %s\n",
                  name, got, want, match ? "match" : "MISMATCH");
    }
    if (!ok) {
      std::fprintf(stderr, "trace/table phase sums disagree\n");
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

// Ablation: multi-tenant QoS under credit-based flow control (docs/flow.md).
// Two tenant pipelines hammer one staging server whose memory budget admits
// exactly one block at a time, so every stage() must win a credit from the
// server's deficit-round-robin grant queue before its RDMA pull may begin.
// Three configurations of the same run:
//
//   no-flow    admission off: both tenants stage unchecked (the pre-flow
//              behaviour -- staged bytes are bounded by nothing),
//   flow 1:1   budget enforced, byte-fair DRR split,
//   flow 3:1   tenant-a weighted 3x: its achieved staging bandwidth should
//              land within 10% of a 75% share while tenant-b is still never
//              starved (the DRR guarantee).
//
// Reported per pipeline: achieved staging bandwidth over a fixed virtual
// window, p99 stage() latency (credit wait + transfer), client Busy retries,
// and the server's peak concurrently-staged bytes. Also emits BENCH_flow.json
// (path = argv[1], default ./BENCH_flow.json).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "colza/admin.hpp"
#include "colza/backend.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "des/sync.hpp"
#include "flow/flow.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace colza;
using namespace colza::bench;

// One credit == one block: the budget serializes staging, so the grant queue
// (not the NIC) decides who makes progress and the weight ratio is the whole
// story.
constexpr std::uint64_t kBlockBytes = 2ull << 20;
constexpr int kWarmupMs = 500;
constexpr int kWindowSec = 5;

class SinkBackend final : public Backend {
 public:
  explicit SinkBackend(Context ctx) : Backend(std::move(ctx)) {}
  Status activate(std::uint64_t) override { return Status::Ok(); }
  Status stage(StagedBlock) override { return Status::Ok(); }
  Status execute(std::uint64_t) override { return Status::Ok(); }
  Status deactivate(std::uint64_t) override { return Status::Ok(); }
};

COLZA_REGISTER_BACKEND("flow-bench-sink", SinkBackend)

struct TenantStats {
  std::uint64_t bytes = 0;  // staged bytes completing inside the window
  std::uint64_t iterations = 0;
  std::vector<double> stage_ms;  // per-stage latency samples in the window

  [[nodiscard]] double mbps() const {
    return static_cast<double>(bytes) / 1e6 / kWindowSec;
  }
  [[nodiscard]] double p99_ms() const {
    if (stage_ms.empty()) return 0.0;
    std::vector<double> s = stage_ms;
    std::sort(s.begin(), s.end());
    return s[std::min(s.size() - 1, (s.size() * 99) / 100)];
  }
};

struct CaseResult {
  TenantStats a, b;
  std::uint64_t busy_retries = 0;
  std::uint64_t sheds = 0;
  std::uint64_t peak_staged = 0;
  [[nodiscard]] double share_a() const {
    const double total = a.mbps() + b.mbps();
    return total == 0.0 ? 0.0 : a.mbps() / total;
  }
};

CaseResult run_case(bool flow_on, std::uint32_t weight_a,
                    std::uint32_t weight_b) {
  obs::MetricsRegistry::global().reset();
  des::Simulation sim(des::SimConfig{.seed = 4242});
  net::Network net(sim);

  ServerConfig scfg;
  scfg.init_cost = des::milliseconds(10);
  if (flow_on) scfg.flow.budget_bytes = kBlockBytes;
  LaunchModel instant{des::milliseconds(10), 0.0, des::milliseconds(10)};
  StagingArea area(net, scfg, instant, /*seed=*/7);
  area.launch_initial(1, /*base_node=*/100);
  sim.run_until(des::seconds(1));

  // The admin tool provisions both tenants and applies the QoS weights
  // through the same RPCs examples/admin_cli.cpp exposes.
  net::Process& admin_proc = net.create_process(10);
  Client admin_client(admin_proc);
  admin_proc.spawn("admin", [&] {
    Admin admin(admin_client.engine());
    for (net::ProcId s : area.alive_addresses()) {
      admin.create_pipeline(s, "tenant-a", "flow-bench-sink").check();
      admin.create_pipeline(s, "tenant-b", "flow-bench-sink").check();
      if (flow_on) {
        admin.set_weight(s, "tenant-a", weight_a).check();
        admin.set_weight(s, "tenant-b", weight_b).check();
      }
    }
  });
  sim.run();

  // Both tenants drive back-to-back single-block iterations on two
  // concurrent streams, so each tenant keeps a request queued at the server
  // even while its other block transfers -- every grant decision sees both
  // tenants backlogged and the DRR deficits (not arrival order) pick the
  // winner. A stream never holds a credit while waiting for another
  // (single-block working set), so contention can never deadlock. activate()
  // is serialized across streams because the server's 2PC prepare slot is
  // server-wide, and the iteration id spaces are disjoint (stride 4) for the
  // same reason.
  des::Mutex activate_mu(sim);
  const des::Time w0 = sim.now() + des::milliseconds(kWarmupMs);
  const des::Time w1 = w0 + des::seconds(kWindowSec);

  // Enough concurrent streams that a tenant stays backlogged at the server
  // across consecutive grants (a tenant whose queue flickers empty forfeits
  // its DRR deficit -- the classic idle-forfeit rule -- which would erode
  // the weighted share it is entitled to).
  constexpr int kStreams = 4;
  struct Tenant {
    std::string pipe;
    net::Process* proc;
    std::unique_ptr<Client> client;
    TenantStats stats;
  };
  Tenant ta{"tenant-a", &net.create_process(0), nullptr, {}};
  Tenant tb{"tenant-b", &net.create_process(1), nullptr, {}};
  ta.client = std::make_unique<Client>(*ta.proc);
  tb.client = std::make_unique<Client>(*tb.proc);

  int streams_done = 0;
  auto drive = [&](Tenant& t, std::uint64_t first_iteration) {
    t.proc->spawn(t.pipe + "-" + std::to_string(first_iteration),
                  [&, first_iteration] {
      auto h = DistributedPipelineHandle::lookup(
          *t.client, area.bootstrap().contacts(), t.pipe);
      h.status().check();
      if (flow_on) h->set_flow_control(FlowClientOptions{.enabled = true});
      std::vector<std::byte> data(kBlockBytes, std::byte{0x5A});
      std::uint64_t it = first_iteration;
      while (sim.now() < w1) {
        activate_mu.lock();
        const Status act = h->activate(it);
        activate_mu.unlock();
        act.check();
        const des::Time t0 = sim.now();
        h->stage(it, /*block_id=*/0, data).check();
        const des::Time t1 = sim.now();
        if (t1 > w0 && t1 <= w1) {
          t.stats.bytes += data.size();
          t.stats.stage_ms.push_back(des::to_millis(t1 - t0));
        }
        h->execute(it).check();
        h->deactivate(it).check();
        ++t.stats.iterations;
        it += 2 * kStreams;
      }
      ++streams_done;
    });
  };
  for (int s = 0; s < kStreams; ++s) {
    drive(ta, static_cast<std::uint64_t>(s) + 1);
    drive(tb, static_cast<std::uint64_t>(s) + 1 + kStreams);
  }
  sim.run();
  if (streams_done != 2 * kStreams) {
    std::fprintf(stderr, "tenant streams did not finish\n");
    std::abort();
  }

  CaseResult r;
  r.a = std::move(ta.stats);
  r.b = std::move(tb.stats);
  r.busy_retries =
      obs::MetricsRegistry::global().counter("flow.client.busy").value;
  for (net::ProcId s : area.alive_addresses()) {
    if (flow::ServerFlow* fl = flow::Registry::find(&sim, s)) {
      r.sheds += fl->sheds_total();
      r.peak_staged = std::max(r.peak_staged, fl->peak_staged_bytes());
    }
  }
  return r;
}

void json_case(std::FILE* f, const char* key, const CaseResult& r,
               bool last = false) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"bw_a_mbps\": %.2f,\n"
               "    \"bw_b_mbps\": %.2f,\n"
               "    \"share_a\": %.4f,\n"
               "    \"p99_stage_a_ms\": %.3f,\n"
               "    \"p99_stage_b_ms\": %.3f,\n"
               "    \"iterations_a\": %llu,\n"
               "    \"iterations_b\": %llu,\n"
               "    \"busy_retries\": %llu,\n"
               "    \"server_sheds\": %llu,\n"
               "    \"peak_staged_bytes\": %llu\n"
               "  }%s\n",
               key, r.a.mbps(), r.b.mbps(), r.share_a(), r.a.p99_ms(),
               r.b.p99_ms(),
               static_cast<unsigned long long>(r.a.iterations),
               static_cast<unsigned long long>(r.b.iterations),
               static_cast<unsigned long long>(r.busy_retries),
               static_cast<unsigned long long>(r.sheds),
               static_cast<unsigned long long>(r.peak_staged),
               last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  headline("Ablation -- two-tenant QoS: credit admission + weighted fair "
           "staging",
           "the multi-tenant staging concern of S II-C/S IV: one server "
           "budget shared by two pipelines, DRR weights vs no flow control");

  const CaseResult off = run_case(/*flow_on=*/false, 1, 1);
  const CaseResult even = run_case(/*flow_on=*/true, 1, 1);
  const CaseResult skewed = run_case(/*flow_on=*/true, 3, 1);

  Table table({"config", "weights", "bw_a_MBps", "bw_b_MBps", "share_a",
               "p99_a_ms", "p99_b_ms", "busy", "peak_staged_MiB"});
  auto row = [&](const char* name, const char* weights, const CaseResult& r) {
    table.row({name, weights, fmt("%.1f", r.a.mbps()), fmt("%.1f", r.b.mbps()),
               fmt("%.3f", r.share_a()), fmt_ms(r.a.p99_ms()),
               fmt_ms(r.b.p99_ms()),
               std::to_string(r.busy_retries),
               fmt("%.1f", static_cast<double>(r.peak_staged) / (1 << 20))});
  };
  row("no-flow", "-", off);
  row("flow", "1:1", even);
  row("flow", "3:1", skewed);
  table.print("abl_flowctl");

  note("block 2 MiB == server budget: with flow on, the DRR grant queue "
       "serializes the budget and the byte share tracks the weights");
  note("no-flow staging is unbounded by construction (admission off, peak "
       "column reads 0 because nothing is charged); the flow rows never "
       "exceed the %.1f MiB budget",
       static_cast<double>(kBlockBytes) / (1 << 20));
  note("1:1 holds tenant-a to a %.0f%% share (starved of its 75%% "
       "entitlement); 3:1 achieves %.1f%% (target 75%% +/- 10%%)",
       even.share_a() * 100, skewed.share_a() * 100);

  const char* path = argc > 1 ? argv[1] : "BENCH_flow.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"benchmark\": \"bench_abl_flowctl\",\n"
      "  \"scenario\": \"two tenant pipelines vs one staging server; block "
      "2 MiB == server budget, %d s virtual measurement window after %d ms "
      "warmup; weights applied via colza.admin.set_weight\",\n"
      "  \"machine\": \"container, RelWithDebInfo -O2, single thread, "
      "deterministic virtual time (seed 4242)\",\n",
      kWindowSec, kWarmupMs);
  json_case(f, "no_flow", off);
  json_case(f, "flow_1_1", even);
  json_case(f, "flow_3_1", skewed);
  std::fprintf(
      f,
      "  \"target_share_a_3_1\": 0.75,\n"
      "  \"notes\": \"Acceptance: flow_3_1.share_a within 10%% of 0.75 while "
      "flow_1_1 holds the weighted tenant to ~0.5 (its 3:1 entitlement is "
      "starved without weights) and no flow row's peak_staged_bytes exceeds "
      "the %llu-byte budget. busy_retries counts client-absorbed Busy sheds; "
      "no stage() ever failed in any configuration.\"\n"
      "}\n",
      static_cast<unsigned long long>(kBlockBytes));
  std::fclose(f);
  std::printf("\nwrote %s\n", path);

  // The acceptance gate, enforced so CI catches fairness regressions.
  const double ratio = skewed.share_a() / 0.75;
  if (ratio < 0.9 || ratio > 1.1) {
    std::fprintf(stderr, "FAIL: 3:1 share_a %.3f not within 10%% of 0.75\n",
                 skewed.share_a());
    return 1;
  }
  return 0;
}

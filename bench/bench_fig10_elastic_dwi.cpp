// Fig 10: the practical payoff of elasticity on a workload whose complexity
// grows over time. The Deep Water Impact proxy runs for 30 iterations;
// three deployments are compared:
//   static-8   -- 8 Colza processes throughout (rendering time grows
//                 unboundedly with the mesh);
//   static-72  -- 72 processes throughout (low and flat, but wasteful early);
//   elastic    -- start with 8, add 8 more (one node) every other iteration
//                 from iteration 13 (the paper's schedule), keeping the
//                 rendering time bounded at the cost of per-join spikes.
#include <cstdio>

#include "apps/dwi_proxy.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"

namespace {

using namespace colza;
using namespace colza::bench;

constexpr int kClients = 8;
constexpr int kIterations = 30;

apps::DwiParams dwi_params() {
  apps::DwiParams p;
  p.blocks = 64;
  p.base_edge = 20;
  p.growth_per_iteration = 4;
  return p;
}

std::vector<IterationTimes> run(int initial_servers, bool elastic) {
  HarnessConfig cfg;
  cfg.servers = initial_servers;
  cfg.servers_per_node = 8;
  cfg.clients = kClients;
  cfg.clients_per_node = 16;
  cfg.pipeline_json =
      R"({"preset":"dwi","width":64,"height":64,"resample_dims":[24,24,24]})";

  const apps::DwiParams params = dwi_params();
  ColzaPipelineHarness harness(cfg);
  auto& sim = harness.sim();
  const std::uint32_t per_client = params.blocks / kClients;

  int next_node = 100;
  BeforeIteration before;
  if (elastic) {
    // Paper schedule: from iteration 13, add 8 processes (one node) every
    // other iteration, reaching 72 by the end of the run.
    before = [&](std::uint64_t iteration) {
      if (iteration < 13 || iteration > 27 || iteration % 2 == 0) return;
      for (int i = 0; i < 8; ++i) {
        harness.add_server(static_cast<net::NodeId>(next_node));
      }
      ++next_node;
      // Allow the joins and gossip to settle before this iteration's 2PC
      // (the paper's job script also spaces additions out in time).
      sim.sleep_for(des::seconds(8));
    };
  }

  auto gen = [&](int client, std::uint64_t iteration) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (std::uint32_t b = 0; b < per_client; ++b) {
      const std::uint32_t id =
          static_cast<std::uint32_t>(client) * per_client + b;
      blocks.emplace_back(id, sim.charge_scoped([&] {
        return vis::DataSet{
            apps::dwi_block(params, static_cast<int>(iteration), id)};
      }));
    }
    return blocks;
  };
  return harness.run(kIterations, gen, before);
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Fig 10 -- elastic vs static Colza on Deep Water Impact",
           "render time per iteration: static-8, static-72, elastic 8->72 "
           "(paper Fig 10)");
  note("paper: static-8 keeps growing; elastic stays bounded (<= ~2x the "
       "static-72 floor) after the resizes kick in at iteration 13");

  auto static8 = run(8, /*elastic=*/false);
  auto static72 = run(72, /*elastic=*/false);
  auto elastic = run(8, /*elastic=*/true);

  Table table({"iteration", "static8_s", "static72_s", "elastic_s",
               "elastic_servers"});
  for (int i = 0; i < kIterations; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    table.row({std::to_string(i + 1),
               fmt("%.4f", des::to_seconds(static8[idx].execute)),
               fmt("%.4f", des::to_seconds(static72[idx].execute)),
               fmt("%.4f", des::to_seconds(elastic[idx].execute)),
               std::to_string(elastic[idx].servers)});
  }
  table.print("fig10");

  const double s8_end = des::to_seconds(static8.back().execute);
  const double s72_end = des::to_seconds(static72.back().execute);
  const double el_end = des::to_seconds(elastic.back().execute);
  std::printf("\nshape: final iteration -- static8 %.4f s, elastic %.4f s, "
              "static72 %.4f s (elastic within %.1fx of static72, "
              "static8 %.1fx above static72)\n",
              s8_end, el_end, s72_end, el_end / s72_end, s8_end / s72_end);
  return 0;
}

// Shared output helpers for the paper-reproduction benches. Each bench binary
// prints (a) a human-readable table mirroring the paper's table/figure and
// (b) machine-readable CSV lines prefixed with "csv," for downstream plotting.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace colza::bench {

inline void headline(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("note: ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print(const std::string& csv_tag) const {
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
      width[c] = columns_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], r[c].size());
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(width[c]), cells[c].c_str());
      std::printf("\n");
    };
    print_row(columns_);
    std::string sep;
    for (std::size_t c = 0; c < columns_.size(); ++c)
      sep += std::string(width[c], '-') + "  ";
    std::printf("%s\n", sep.c_str());
    for (const auto& r : rows_) print_row(r);
    // CSV block.
    std::printf("csv,%s", csv_tag.c_str());
    for (const auto& col : columns_) std::printf(",%s", col.c_str());
    std::printf("\n");
    for (const auto& r : rows_) {
      std::printf("csv,%s", csv_tag.c_str());
      for (const auto& cell : r) std::printf(",%s", cell.c_str());
      std::printf("\n");
    }
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

inline std::string fmt_ms(double ms) { return fmt("%.3f", ms); }

}  // namespace colza::bench

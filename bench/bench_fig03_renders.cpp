// Fig 3 (and Fig 1b): regenerates the paper's rendered results as image
// files -- the Gray-Scott multi-level isosurfaces with clipping (Fig 3a),
// the Mandelbulb single-level isosurface (Fig 3b), and the Deep Water
// Impact volume rendering colored by velocity (Fig 1b) -- each produced by
// the full distributed pipeline (staging + filters + parallel compositing)
// on a small Colza deployment. Prints image hashes and paths.
#include <cstdio>

#include "apps/dwi_proxy.hpp"
#include "apps/gray_scott.hpp"
#include "apps/mandelbulb.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"

namespace {

using namespace colza;
using namespace colza::bench;

std::string render_gray_scott() {
  const char* path = "/tmp/colza_fig3a_grayscott.ppm";
  HarnessConfig cfg;
  cfg.servers = 4;
  cfg.clients = 4;
  cfg.pipeline_json =
      std::string(R"({"preset":"gray-scott","width":256,"height":256,)") +
      R"("save_path":")" + path + R"("})";
  ColzaPipelineHarness harness(cfg);
  std::vector<std::unique_ptr<apps::GrayScott3D>> solvers(4);
  apps::GrayScott3D::Params p;
  p.n = 48;
  p.steps_per_iteration = 60;  // enough steps for visible structure
  auto gen = [&](int client, std::uint64_t)
      -> std::vector<std::pair<std::uint64_t, vis::DataSet>> {
    auto& s = solvers[static_cast<std::size_t>(client)];
    if (s == nullptr) s = std::make_unique<apps::GrayScott3D>(p, client, 4);
    s->step(&harness.client_comm(client)).check();
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    blocks.emplace_back(static_cast<std::uint64_t>(client),
                        vis::DataSet{s->block()});
    return blocks;
  };
  harness.run(4, gen);
  return path;
}

std::string render_mandelbulb() {
  const char* path = "/tmp/colza_fig3b_mandelbulb.ppm";
  HarnessConfig cfg;
  cfg.servers = 4;
  cfg.clients = 4;
  cfg.pipeline_json =
      std::string(R"({"preset":"mandelbulb","width":256,"height":256,)") +
      R"("save_path":")" + path + R"("})";
  ColzaPipelineHarness harness(cfg);
  apps::MandelbulbParams mb;
  mb.nx = mb.ny = mb.nz = 24;
  mb.total_blocks = 16;
  auto gen = [&](int client, std::uint64_t) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (int b = 0; b < 4; ++b) {
      const auto id = static_cast<std::uint64_t>(client * 4 + b);
      blocks.emplace_back(id, harness.sim().charge_scoped([&] {
        return vis::DataSet{
            apps::mandelbulb_block(mb, static_cast<std::uint32_t>(id))};
      }));
    }
    return blocks;
  };
  harness.run(1, gen);
  return path;
}

std::string render_dwi() {
  const char* path = "/tmp/colza_fig1b_dwi.ppm";
  HarnessConfig cfg;
  cfg.servers = 4;
  cfg.clients = 4;
  cfg.pipeline_json =
      std::string(
          R"({"preset":"dwi","width":256,"height":256,"resample_dims":[32,32,32],)") +
      R"("save_path":")" + path + R"("})";
  ColzaPipelineHarness harness(cfg);
  apps::DwiParams p;
  p.blocks = 16;
  p.base_edge = 28;
  p.growth_per_iteration = 6;
  p.total_iterations = 12;
  auto gen = [&](int client, std::uint64_t) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (std::uint32_t b = 0; b < 4; ++b) {
      const std::uint32_t id = static_cast<std::uint32_t>(client) * 4 + b;
      blocks.emplace_back(id, harness.sim().charge_scoped([&] {
        return vis::DataSet{apps::dwi_block(p, 12, id)};
      }));
    }
    return blocks;
  };
  harness.run(1, gen);
  return path;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t hash_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::uint64_t h = 1469598103934665603ULL;
  int c = 0;
  while ((c = std::fgetc(f)) != EOF) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ULL;
  }
  std::fclose(f);
  return h;
}

}  // namespace

int main() {
  headline("Fig 3 / Fig 1b -- rendered results",
           "regenerates the paper's three renderings through the full "
           "distributed pipeline");

  Table table({"figure", "pipeline", "image", "fnv_hash"});
  const std::string gs = render_gray_scott();
  table.row({"Fig 3a", "gray-scott (3 isosurfaces + clip)", gs,
             hex64(hash_file(gs))});
  const std::string mb = render_mandelbulb();
  table.row({"Fig 3b", "mandelbulb (single isosurface)", mb,
             hex64(hash_file(mb))});
  const std::string dwi = render_dwi();
  table.row({"Fig 1b", "dwi (volume, velocity-colored)", dwi,
             hex64(hash_file(dwi))});
  table.print("fig03");
  return 0;
}

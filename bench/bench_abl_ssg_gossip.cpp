// Ablation: SSG gossip parameters vs elastic resize latency. The paper
// (S II-E) notes the activate/resize overhead "depends on SSG's
// configuration parameters such as how frequently information is exchanged
// across members". This bench measures join-propagation time as a function
// of the SWIM probe period and group size.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "rpc/engine.hpp"
#include "ssg/ssg.hpp"

namespace {

using namespace colza;

double join_propagation_s(int group_size, des::Duration probe_period,
                          std::uint64_t seed) {
  des::Simulation sim(des::SimConfig{.seed = seed});
  net::Network net(sim);
  ssg::SwimConfig cfg;
  cfg.probe_period = probe_period;
  cfg.probe_timeout = probe_period / 3;
  cfg.suspicion_timeout = 4 * probe_period;
  ssg::Bootstrap bootstrap;
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<rpc::Engine>> engines;
  std::vector<std::unique_ptr<ssg::Group>> groups;
  std::vector<net::ProcId> addrs;
  for (int i = 0; i < group_size; ++i) {
    auto& p = net.create_process(static_cast<net::NodeId>(i));
    procs.push_back(&p);
    engines.push_back(std::make_unique<rpc::Engine>(p, net::Profile::mona()));
    addrs.push_back(p.id());
  }
  for (int i = 0; i < group_size; ++i) {
    groups.push_back(std::make_unique<ssg::Group>(
        *engines[static_cast<std::size_t>(i)], cfg, addrs, &bootstrap));
  }
  sim.run_until(des::seconds(5));

  // Join one member and measure until every member's view includes it.
  auto& joiner_proc = net.create_process(static_cast<net::NodeId>(group_size));
  auto joiner_engine =
      std::make_unique<rpc::Engine>(joiner_proc, net::Profile::mona());
  const des::Time start = sim.now();
  joiner_proc.spawn("joiner", [&] {
    auto g = ssg::Group::join(*joiner_engine, cfg, bootstrap.contacts(),
                              &bootstrap);
    g.status().check();
    groups.push_back(std::move(*g));
  });
  for (des::Time t = start; t < start + des::seconds(300);
       t += des::milliseconds(50)) {
    sim.run_until(t);
    bool all = groups.size() == static_cast<std::size_t>(group_size) + 1;
    for (const auto& g : groups) {
      all = all && g->size() == static_cast<std::size_t>(group_size) + 1;
    }
    if (all) return des::to_seconds(sim.now() - start);
  }
  return -1;
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Ablation -- SSG gossip period vs join propagation",
           "paper S II-E: resize overhead depends on gossip frequency");

  Table table({"group_size", "period_s", "propagation_s"});
  for (int n : {4, 8, 16, 32}) {
    for (double period : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const double t = join_propagation_s(
          n, des::from_seconds(period),
          static_cast<std::uint64_t>(n * 100) + static_cast<std::uint64_t>(period * 4));
      table.row({std::to_string(n), fmt("%.2f", period), fmt("%.2f", t)});
    }
  }
  table.print("abl_ssg");
  return 0;
}

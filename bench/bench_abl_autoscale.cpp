// Ablation: automatic resizing (paper S VI future work / S IV-B triggers).
// Repeats the Fig 10 scenario -- Deep Water Impact with a growing mesh --
// but instead of the paper's hand-written schedule, an AutoScaler watches
// the per-iteration pipeline time and requests nodes when the median
// exceeds the target. The shape to observe: execution time hugs the target
// band instead of growing unboundedly, with join spikes like Fig 9/10.
#include <cstdio>

#include "apps/dwi_proxy.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"
#include "colza/autoscale.hpp"

int main() {
  using namespace colza;
  using namespace colza::bench;
  headline("Ablation -- automatic resizing on Deep Water Impact",
           "AutoScaler vs static deployment (paper S VI future work)");

  constexpr int kClients = 8;
  constexpr int kIterations = 30;
  apps::DwiParams params;
  params.blocks = 64;
  params.base_edge = 20;
  params.growth_per_iteration = 4;

  HarnessConfig cfg;
  cfg.servers = 8;
  cfg.servers_per_node = 8;
  cfg.clients = kClients;
  cfg.pipeline_json =
      R"({"preset":"dwi","width":64,"height":64,"resample_dims":[24,24,24]})";

  ColzaPipelineHarness harness(cfg);
  auto& sim = harness.sim();

  AutoScalePolicy policy;
  policy.target_execute = des::milliseconds(4);
  policy.window = 3;
  policy.cooldown_iterations = 2;
  policy.max_servers = 72;
  AutoScaler scaler(policy);

  // The scaler consumes each completed iteration's time; an "up" decision
  // requests one more node (8 processes) before the next activate.
  int next_node = 100;
  bool scale_pending = false;
  AfterIteration after = [&](const IterationTimes& t) {
    if (scaler.observe(t.execute, t.servers) == ScaleDecision::up)
      scale_pending = true;
  };
  BeforeIteration before = [&](std::uint64_t) {
    if (!scale_pending) return;
    scale_pending = false;
    for (int i = 0; i < 8; ++i) {
      harness.add_server(static_cast<net::NodeId>(next_node));
    }
    ++next_node;
    sim.sleep_for(des::seconds(8));  // join + gossip settle
  };

  const std::uint32_t per_client = params.blocks / kClients;
  auto gen = [&](int client, std::uint64_t iteration) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (std::uint32_t b = 0; b < per_client; ++b) {
      const std::uint32_t id =
          static_cast<std::uint32_t>(client) * per_client + b;
      blocks.emplace_back(id, sim.charge_scoped([&] {
        return vis::DataSet{
            apps::dwi_block(params, static_cast<int>(iteration), id)};
      }));
    }
    return blocks;
  };

  auto results = harness.run(kIterations, gen, before, after);

  Table table({"iteration", "servers", "execute_ms"});
  for (const auto& t : results) {
    table.row({std::to_string(t.iteration), std::to_string(t.servers),
               fmt_ms(des::to_millis(t.execute))});
  }
  table.print("abl_autoscale");
  std::printf("\nfinal staging-area size: %zu (started at 8)\n",
              results.back().servers);
  return 0;
}

// Fig 6: execution time of the Gray-Scott pipeline (multi-level isosurfaces
// + clip) using MPI or MoNA at various scales, with a FIXED total data size
// (strong scaling: time decreases with servers, MPI ~= MoNA).
//
// Paper setup: 512 client processes on 16 nodes, 2 GB per iteration, staging
// area of 4..128 servers. This reproduction runs the real reaction-diffusion
// solver (with halo exchange across client ranks) on a scaled-down grid.
#include <cstdio>
#include <memory>

#include "apps/gray_scott.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"

namespace {

using namespace colza;
using namespace colza::bench;

constexpr int kClients = 16;
constexpr std::uint32_t kGrid = 48;  // global cube edge
constexpr int kIterations = 6;

double run_scale(int servers, const net::Profile& profile) {
  HarnessConfig cfg;
  cfg.servers = servers;
  cfg.servers_per_node = 4;
  cfg.clients = kClients;
  cfg.clients_per_node = 16;
  cfg.server_profile = profile;
  cfg.pipeline_json =
      R"({"preset":"gray-scott","width":128,"height":128,"range_hi":0.5})";

  ColzaPipelineHarness harness(cfg);
  std::vector<std::unique_ptr<apps::GrayScott>> solvers(kClients);
  apps::GrayScott::Params params;
  params.n = kGrid;
  params.steps_per_iteration = 3;

  auto gen = [&](int client, std::uint64_t)
      -> std::vector<std::pair<std::uint64_t, vis::DataSet>> {
    auto& solver = solvers[static_cast<std::size_t>(client)];
    if (solver == nullptr)
      solver = std::make_unique<apps::GrayScott>(params, client, kClients);
    solver->step(&harness.client_comm(client)).check();
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    blocks.emplace_back(static_cast<std::uint64_t>(client),
                        harness.sim().charge_scoped([&] {
                          return vis::DataSet{solver->block()};
                        }));
    return blocks;
  };
  auto times = harness.run(kIterations, gen);
  double sum = 0;
  int counted = 0;
  for (const auto& t : times) {
    if (t.iteration == 1) continue;
    sum += des::to_seconds(t.execute);
    ++counted;
  }
  return sum / counted;
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Fig 6 -- Gray-Scott pipeline, strong scaling, MPI vs MoNA",
           "avg pipeline execution time, fixed total data (paper Fig 6)");
  note("paper: time decreases with servers (~8 s at 4 servers to <1 s at "
       "128), MPI ~= MoNA");

  Table table({"servers", "mpi_s", "mona_s", "mona_over_mpi"});
  double first_mpi = 0;
  for (int servers : {4, 8, 16, 32, 64}) {
    const double mpi = run_scale(servers, net::Profile::cray_mpich());
    const double mona = run_scale(servers, net::Profile::mona());
    if (servers == 4) first_mpi = mpi;
    table.row({std::to_string(servers), fmt("%.4f", mpi), fmt("%.4f", mona),
               fmt("%.3f", mona / mpi)});
  }
  table.print("fig06");
  std::printf("\nstrong-scaling check: 4-server time should exceed 64-server "
              "time (got %.4f s at 4 servers)\n", first_mpi);
  return 0;
}

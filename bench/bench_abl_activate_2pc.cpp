// Ablation: the cost of activate()'s two-phase commit (paper S II-E).
//
// Claim to reproduce: "it does not incur any overhead if the group hasn't
// changed when activate is called, and an overhead in the order of a second
// when the group did change" (dominated by the abort + view refresh +
// gossip-settling backoff).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"

int main() {
  using namespace colza;
  using namespace colza::bench;
  headline("Ablation -- activate() 2PC cost, stable vs changed group",
           "paper S II-E claim: free when stable, ~1 s when changed");

  HarnessConfig cfg;
  cfg.servers = 8;
  cfg.servers_per_node = 4;
  cfg.clients = 4;
  cfg.pipeline_json = R"({"preset":"mandelbulb","width":32,"height":32})";

  ColzaPipelineHarness harness(cfg);
  auto& sim = harness.sim();

  // Grow the area by one at iterations 4 and 8.
  BeforeIteration before = [&](std::uint64_t iteration) {
    if (iteration != 4 && iteration != 8) return;
    harness.add_server(static_cast<net::NodeId>(50 + iteration));
    sim.sleep_for(des::seconds(8));  // let the join and gossip land
  };

  auto gen = [&](int, std::uint64_t) {
    return std::vector<std::pair<std::uint64_t, vis::DataSet>>{};
  };
  auto times = harness.run(12, gen, before);

  Table table({"iteration", "group_changed", "activate_ms"});
  double stable_sum = 0, changed_sum = 0;
  int stable_n = 0, changed_n = 0;
  std::size_t prev_servers = 8;
  for (const auto& t : times) {
    const bool changed = t.servers != prev_servers;
    prev_servers = t.servers;
    table.row({std::to_string(t.iteration), changed ? "yes" : "no",
               fmt_ms(des::to_millis(t.activate))});
    (changed ? changed_sum : stable_sum) += des::to_millis(t.activate);
    (changed ? changed_n : stable_n) += 1;
  }
  table.print("abl_2pc");
  std::printf("\nstable-group activate avg: %.3f ms; changed-group activate "
              "avg: %.1f ms (%.0fx)\n",
              stable_sum / stable_n, changed_sum / changed_n,
              (changed_sum / changed_n) / (stable_sum / stable_n));
  return 0;
}

// Table I: time (in milliseconds) to complete 1000 send/recv operations
// using Cray-mpich, OpenMPI, MoNA, and NA, as a function of message size.
//
// Two processes on distinct nodes run a ping-pong; the reported value is the
// per-direction cost x 1000 (total round-trip time / 2), matching the
// paper's measurement. The NA column only exists for small messages, as in
// the paper (raw NA has no large-message path in the benchmark).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "des/simulation.hpp"
#include "mona/mona.hpp"
#include "net/network.hpp"

namespace {

using namespace colza;

double pingpong_ms(const net::Profile& profile, std::size_t bytes, int reps) {
  des::Simulation sim;
  net::Network net(sim);
  auto& pa = net.create_process(0);
  auto& pb = net.create_process(1);
  mona::Instance ia(pa, profile), ib(pb, profile);
  des::Duration elapsed = 0;
  pa.spawn("ping", [&] {
    std::vector<std::byte> buf(bytes);
    const des::Time t0 = sim.now();
    for (int i = 0; i < reps; ++i) {
      ia.send(buf, pb.id(), 1).check();
      ia.recv(buf, pb.id(), 2).check();
    }
    elapsed = sim.now() - t0;
  });
  pb.spawn("pong", [&] {
    std::vector<std::byte> buf(bytes);
    for (int i = 0; i < reps; ++i) {
      ib.recv(buf, pa.id(), 1).check();
      ib.send(buf, pa.id(), 2).check();
    }
  });
  sim.run();
  // Per-direction total for 1000 ops.
  return des::to_millis(elapsed) / 2.0 * (1000.0 / reps);
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Table I -- point-to-point latency",
           "time (ms) to complete 1000 send/recv operations (paper Table I)");
  note("paper values (Cori): cray 1.163..56.371, openmpi 1.527..109.472, "
       "mona 1.924..72.69, na 2.103..2.766 (small msgs only)");

  const std::vector<std::size_t> sizes{8,         128,       2048,
                                       16 * 1024, 32 * 1024, 512 * 1024};
  Table table({"size", "cray-mpich", "openmpi", "mona", "na"});
  for (std::size_t size : sizes) {
    const int reps = size >= 16 * 1024 ? 200 : 1000;
    std::vector<std::string> row{format_size(size)};
    row.push_back(
        fmt_ms(pingpong_ms(net::Profile::cray_mpich(), size, reps)));
    row.push_back(fmt_ms(pingpong_ms(net::Profile::openmpi(), size, reps)));
    row.push_back(fmt_ms(pingpong_ms(net::Profile::mona(), size, reps)));
    if (size <= 2048) {
      row.push_back(fmt_ms(pingpong_ms(net::Profile::na(), size, reps)));
    } else {
      row.push_back("-");
    }
    table.row(row);
  }
  table.print("tab1");
  return 0;
}

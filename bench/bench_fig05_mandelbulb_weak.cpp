// Fig 5: execution time of the Mandelbulb pipeline using the MPI and MoNA
// communication layers at various scales (weak scaling: the number of blocks
// is proportional to the staging-area size, so the curve should be roughly
// flat and the MPI/MoNA curves should coincide).
//
// Paper setup: up to 512 client processes, 4 blocks of 128^3 per client,
// 4 clients per Colza server, staging area of 4..128 servers; 6 iterations,
// the first discarded (VTK/Python init), the next 5 averaged. This
// reproduction keeps the topology and measurement protocol and scales the
// block size down (see EXPERIMENTS.md).
#include <cstdio>

#include "apps/mandelbulb.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"

namespace {

using namespace colza;
using namespace colza::bench;

constexpr std::uint32_t kBlockEdge = 12;
constexpr int kBlocksPerClient = 4;
constexpr int kClientsPerServer = 4;
constexpr int kIterations = 6;  // discard #1, average the rest

double run_scale(int servers, const net::Profile& profile) {
  HarnessConfig cfg;
  cfg.servers = servers;
  cfg.servers_per_node = 4;
  cfg.clients = servers * kClientsPerServer;
  cfg.clients_per_node = 32;
  cfg.server_profile = profile;
  cfg.pipeline_json = R"({"preset":"mandelbulb","width":128,"height":128})";

  const auto total_blocks =
      static_cast<std::uint32_t>(cfg.clients * kBlocksPerClient);
  apps::MandelbulbParams mb;
  mb.nx = mb.ny = kBlockEdge;
  mb.nz = kBlockEdge;
  mb.total_blocks = total_blocks;

  ColzaPipelineHarness harness(cfg);
  auto& sim = harness.sim();
  auto gen = [&](int client, std::uint64_t) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (int b = 0; b < kBlocksPerClient; ++b) {
      const auto id = static_cast<std::uint64_t>(client * kBlocksPerClient + b);
      blocks.emplace_back(id, sim.charge_scoped([&] {
        return vis::DataSet{
            apps::mandelbulb_block(mb, static_cast<std::uint32_t>(id))};
      }));
    }
    return blocks;
  };
  auto times = harness.run(kIterations, gen);
  double sum = 0;
  int counted = 0;
  for (const auto& t : times) {
    if (t.iteration == 1) continue;  // discard the init iteration
    sum += des::to_seconds(t.execute);
    ++counted;
  }
  return sum / counted;
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Fig 5 -- Mandelbulb pipeline, weak scaling, MPI vs MoNA",
           "avg pipeline execution time over 5 iterations, first discarded "
           "(paper Fig 5)");
  note("paper: roughly flat ~2.5-4 s at all scales, MPI ~= MoNA; absolute "
       "values here are smaller (scaled-down blocks), the shape is the claim");

  Table table({"servers", "clients", "mpi_s", "mona_s", "mona_over_mpi"});
  for (int servers : {4, 8, 16, 32, 64, 128}) {
    const double mpi = run_scale(servers, net::Profile::cray_mpich());
    const double mona = run_scale(servers, net::Profile::mona());
    table.row({std::to_string(servers),
               std::to_string(servers * kClientsPerServer),
               fmt("%.4f", mpi), fmt("%.4f", mona),
               fmt("%.3f", mona / mpi)});
  }
  table.print("fig05");
  return 0;
}

// Fig 4: time to resize a staging area from N to N+1 processes, comparing
//   static  -- kill the staging area and fully restart it with N+1 daemons
//              (measured: kill -> new area ready to accept requests);
//   elastic -- srun one new daemon that joins the running group via SSG
//              (measured: srun -> membership fully propagated).
//
// Paper result: elastic is stable around ~5 s; static ranges 5-40 s with an
// average around 16 s.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

namespace {

using namespace colza;

bool all_converged(const StagingArea& area, std::size_t expect) {
  std::size_t alive = 0;
  for (const auto& s : area.servers()) {
    if (!s->alive()) continue;
    ++alive;
    if (s->group().size() != expect) return false;
  }
  return alive == expect;
}

struct ResizeResult {
  double elastic_s = 0;
  double static_s = 0;
};

ResizeResult measure(int n, std::uint64_t seed) {
  ResizeResult out;

  // ---- elastic: running area of N, add one node --------------------------
  {
    des::Simulation sim(des::SimConfig{.seed = seed});
    net::Network net(sim);
    StagingArea area(net, ServerConfig{}, LaunchModel{}, seed);
    area.launch_initial(n, 0);
    sim.run_until(des::seconds(90));  // area fully up and settled
    const des::Time start = sim.now();  // "srun" issued now
    area.launch_one(static_cast<net::NodeId>(n));
    des::Time converged = 0;
    for (des::Time t = start; t < start + des::seconds(120);
         t += des::milliseconds(100)) {
      sim.run_until(t);
      if (all_converged(area, static_cast<std::size_t>(n) + 1)) {
        converged = sim.now();
        break;
      }
    }
    out.elastic_s = des::to_seconds(converged - start);
  }

  // ---- static: kill everything, restart with N+1 -------------------------
  {
    des::Simulation sim(des::SimConfig{.seed = seed});
    net::Network net(sim);
    StagingArea area(net, ServerConfig{}, LaunchModel{}, seed);
    area.launch_initial(n, 0);
    sim.run_until(des::seconds(90));
    const des::Time start = sim.now();  // kill signal
    area.kill_all();
    bool ready = false;
    des::Time ready_at = 0;
    area.launch_initial(n + 1, 100, [&] {
      ready = true;
      ready_at = sim.now();
    });
    sim.run_until(start + des::seconds(120));
    out.static_s = ready ? des::to_seconds(ready_at - start) : -1;
  }
  return out;
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Fig 4 -- resizing a staging area from N to N+1 processes",
           "static full-restart vs elastic SSG join (paper Fig 4)");
  note("paper: elastic stable ~5 s; static 5-40 s, average ~16 s");

  Table table({"N", "elastic_s", "static_s"});
  double esum = 0, ssum = 0, emin = 1e9, emax = 0, smin = 1e9, smax = 0;
  int count = 0;
  for (int n = 1; n <= 16; ++n) {
    const ResizeResult r = measure(n, 1000 + static_cast<std::uint64_t>(n));
    table.row({std::to_string(n), fmt("%.2f", r.elastic_s),
               fmt("%.2f", r.static_s)});
    esum += r.elastic_s;
    ssum += r.static_s;
    emin = std::min(emin, r.elastic_s);
    emax = std::max(emax, r.elastic_s);
    smin = std::min(smin, r.static_s);
    smax = std::max(smax, r.static_s);
    ++count;
  }
  table.print("fig04");
  std::printf("\nsummary: elastic avg %.2f s (range %.2f-%.2f), "
              "static avg %.2f s (range %.2f-%.2f)\n",
              esum / count, emin, emax, ssum / count, smin, smax);
  return 0;
}

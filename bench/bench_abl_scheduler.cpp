// Ablation: elasticity under cluster scarcity (paper S IV-A). The same
// autoscaled Deep Water Impact run is repeated against a resize-capable job
// scheduler at three background utilizations. On an idle cluster every grow
// request is granted and the pipeline time stays bounded; on a nearly-full
// cluster grows are denied ("unavailable") and the run degrades toward the
// static behaviour of Fig 10 -- elasticity is only as good as the resources
// the scheduler can hand out.
#include <cstdio>

#include "apps/dwi_proxy.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"
#include "colza/autoscale.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace colza;
using namespace colza::bench;

constexpr int kClients = 8;
constexpr int kIterations = 24;

struct RunResult {
  double final_execute_ms = 0;
  std::size_t final_servers = 0;
  int denied = 0;
};

RunResult run(double background_utilization) {
  apps::DwiParams params;
  params.blocks = 32;
  params.base_edge = 20;
  params.growth_per_iteration = 4;

  HarnessConfig cfg;
  cfg.servers = 4;
  cfg.servers_per_node = 1;
  cfg.clients = kClients;
  cfg.pipeline_json =
      R"({"preset":"dwi","width":64,"height":64,"resample_dims":[24,24,24]})";

  ColzaPipelineHarness harness(cfg);
  auto& sim = harness.sim();

  sched::SchedulerConfig scfg;
  scfg.total_nodes = 48;
  sched::Scheduler scheduler(sim, scfg);
  auto job = scheduler.submit(4);  // the staging area's initial nodes
  job.status().check();
  harness.area().attach_scheduler(scheduler, *job);
  // The other tenants arrive once our job is running.
  scheduler.set_background_utilization(background_utilization);

  AutoScalePolicy policy;
  policy.target_execute = des::milliseconds(3);
  policy.window = 2;
  policy.cooldown_iterations = 1;
  AutoScaler scaler(policy);

  RunResult result;
  bool scale_pending = false;
  AfterIteration after = [&](const IterationTimes& t) {
    if (scaler.observe(t.execute, t.servers) == ScaleDecision::up)
      scale_pending = true;
    result.final_execute_ms = des::to_millis(t.execute);
    result.final_servers = t.servers;
  };
  BeforeIteration before = [&](std::uint64_t) {
    if (!scale_pending) return;
    scale_pending = false;
    Status s = harness.area().launch_one_scheduled([&](Server& srv) {
      srv.create_pipeline("render", "catalyst", cfg.pipeline_json).check();
    });
    if (s.code() == StatusCode::unavailable) {
      ++result.denied;
      return;  // try again when the scaler re-fires
    }
    s.check();
    sim.sleep_for(des::seconds(8));
  };

  const std::uint32_t per_client = params.blocks / kClients;
  auto gen = [&](int client, std::uint64_t iteration) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (std::uint32_t b = 0; b < per_client; ++b) {
      const std::uint32_t id =
          static_cast<std::uint32_t>(client) * per_client + b;
      blocks.emplace_back(id, sim.charge_scoped([&] {
        return vis::DataSet{
            apps::dwi_block(params, static_cast<int>(iteration), id)};
      }));
    }
    return blocks;
  };
  harness.run(kIterations, gen, before, after);
  return result;
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Ablation -- autoscaled elasticity vs cluster availability",
           "the S IV-A scheduler discussion: grows are granted or denied by "
           "a resize-capable job scheduler");

  Table table({"bg_utilization", "final_servers", "final_execute_ms",
               "grows_denied"});
  for (double u : {0.0, 0.5, 0.97}) {
    const RunResult r = run(u);
    table.row({fmt("%.2f", u), std::to_string(r.final_servers),
               fmt_ms(r.final_execute_ms), std::to_string(r.denied)});
  }
  table.print("abl_sched");
  std::printf("\nexpected shape: more background load => fewer granted grows "
              "=> fewer final servers and higher final pipeline time\n");
  return 0;
}

// Fig 8: pipeline execution time for the Mandelbulb workload across four
// configurations -- Colza+MoNA, Colza+MPI, Damaris (dedicated-nodes mode),
// and DataSpaces.
//
// Paper result: Colza (both layers) outperforms Damaris; DataSpaces sits
// between Colza+MPI and Colza+MoNA ("DataSpaces ... outperforms Colza when
// Colza uses MoNA, but does not when it uses MPI"). Damaris pays for its
// per-client plugin trigger: a server whose clients signal early enters the
// plugin early and stalls in the first collective.
//
// Paper setup: 64 clients on 16 nodes, 64 servers on 16 nodes, 32 blocks of
// 1 MB per client. Scaled down here; client-side load imbalance is modeled
// as a uniform 0-200 ms jitter before staging/signaling.
#include <cstdio>
#include <memory>

#include "apps/mandelbulb.hpp"
#include "baselines/damaris.hpp"
#include "baselines/dataspaces.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"
#include "common/rng.hpp"

namespace {

using namespace colza;
using namespace colza::bench;

constexpr int kClients = 16;
constexpr int kServers = 16;
constexpr int kBlocksPerClient = 4;
constexpr std::uint32_t kEdge = 16;
constexpr int kIterations = 6;
const char* kJson = R"({"preset":"mandelbulb","width":256,"height":256})";

apps::MandelbulbParams mb_params() {
  apps::MandelbulbParams p;
  p.nx = p.ny = p.nz = kEdge;
  p.total_blocks = kClients * kBlocksPerClient;
  return p;
}

// Average pipeline execution time, first iteration discarded.
double avg_skip_first(const std::vector<double>& v) {
  double sum = 0;
  for (std::size_t i = 1; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(v.size() - 1);
}

double run_colza(const net::Profile& profile) {
  HarnessConfig cfg;
  cfg.servers = kServers;
  cfg.servers_per_node = 4;
  cfg.clients = kClients;
  cfg.clients_per_node = 4;
  cfg.server_profile = profile;
  cfg.pipeline_json = kJson;
  ColzaPipelineHarness harness(cfg);
  auto& sim = harness.sim();
  const apps::MandelbulbParams mb = mb_params();
  Rng jitter(77);
  auto gen = [&](int client, std::uint64_t) {
    // Load-imbalance jitter (same model as the other frameworks).
    sim.sleep_for(des::from_seconds(jitter.uniform() * 0.01));
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (int b = 0; b < kBlocksPerClient; ++b) {
      const auto id = static_cast<std::uint64_t>(client * kBlocksPerClient + b);
      blocks.emplace_back(id, sim.charge_scoped([&] {
        return vis::DataSet{
            apps::mandelbulb_block(mb, static_cast<std::uint32_t>(id))};
      }));
    }
    return blocks;
  };
  auto times = harness.run(kIterations, gen);
  std::vector<double> exec;
  for (const auto& t : times) exec.push_back(des::to_seconds(t.execute));
  return avg_skip_first(exec);
}

double run_damaris() {
  des::Simulation sim(des::SimConfig{.seed = 55});
  net::Network net(sim);
  baselines::Damaris::Config cfg;
  cfg.clients = kClients;
  cfg.servers = kServers;
  cfg.procs_per_node = 4;
  cfg.script = catalyst::PipelineScript::mandelbulb();
  cfg.script.image_width = cfg.script.image_height = 256;
  baselines::Damaris damaris(net, cfg);
  const apps::MandelbulbParams mb = mb_params();
  auto jitter = std::make_shared<Rng>(77);
  damaris.run(kIterations, [&, jitter](int client, std::uint64_t iter) {
    sim.sleep_for(des::from_seconds(jitter->uniform() * 0.01));
    for (int b = 0; b < kBlocksPerClient; ++b) {
      const auto id = static_cast<std::uint32_t>(client * kBlocksPerClient + b);
      vis::UniformGrid block = sim.charge_scoped(
          [&] { return apps::mandelbulb_block(mb, id); });
      damaris.write(client, iter, vis::DataSet{std::move(block)}).check();
    }
    damaris.signal(client, iter, kBlocksPerClient).check();
  });
  sim.run();
  // Per iteration, the framework's pipeline time is the max over servers
  // (they all leave the last collective together; early entrants wait).
  std::vector<double> per_iter(kIterations, 0.0);
  for (const auto& server_records : damaris.records()) {
    for (std::size_t i = 0; i < server_records.size(); ++i) {
      per_iter[i] = std::max(per_iter[i],
                             des::to_seconds(server_records[i].plugin_time));
    }
  }
  return avg_skip_first(per_iter);
}

double run_dataspaces() {
  des::Simulation sim(des::SimConfig{.seed = 55});
  net::Network net(sim);
  baselines::DataSpaces::Config cfg;
  cfg.servers = kServers;
  cfg.procs_per_node = 4;
  cfg.script = catalyst::PipelineScript::mandelbulb();
  cfg.script.image_width = cfg.script.image_height = 256;
  baselines::DataSpaces ds(net, cfg, /*base_node=*/100);
  const apps::MandelbulbParams mb = mb_params();

  // Client processes with their own application-side communicator (for the
  // barrier that separates puts from the trigger -- same pattern as the
  // Colza harness).
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<rpc::Engine>> engines;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<net::ProcId> addrs;
  for (int c = 0; c < kClients; ++c) {
    auto& p = net.create_process(static_cast<net::NodeId>(c / 4));
    procs.push_back(&p);
    engines.push_back(std::make_unique<rpc::Engine>(p, net::Profile::mona()));
    insts.push_back(std::make_unique<mona::Instance>(p));
    addrs.push_back(p.id());
  }
  std::vector<std::shared_ptr<mona::Communicator>> comms;
  for (int c = 0; c < kClients; ++c)
    comms.push_back(insts[static_cast<std::size_t>(c)]->comm_create(addrs));

  std::vector<double> exec_s;
  auto jitter = std::make_shared<Rng>(77);
  for (int c = 0; c < kClients; ++c) {
    procs[static_cast<std::size_t>(c)]->spawn("ds-client", [&, c] {
      auto& comm = *comms[static_cast<std::size_t>(c)];
      for (int iter = 1; iter <= kIterations; ++iter) {
        sim.sleep_for(des::from_seconds(jitter->uniform() * 0.01));
        for (int b = 0; b < kBlocksPerClient; ++b) {
          const auto id =
              static_cast<std::uint64_t>(c * kBlocksPerClient + b);
          auto bytes = sim.charge_scoped([&] {
            return vis::serialize_dataset(vis::DataSet{apps::mandelbulb_block(
                mb, static_cast<std::uint32_t>(id))});
          });
          ds.put(*engines[static_cast<std::size_t>(c)], "mb",
                 static_cast<std::uint64_t>(iter), id, bytes)
              .check();
        }
        comm.barrier().check();  // all puts done
        if (c == 0) {
          const des::Time t0 = sim.now();
          ds.exec(*engines[0], "mb", static_cast<std::uint64_t>(iter)).check();
          exec_s.push_back(des::to_seconds(sim.now() - t0));
          ds.drop(*engines[0], "mb", static_cast<std::uint64_t>(iter)).check();
        }
        comm.barrier().check();  // iteration done
      }
    });
  }
  sim.run();
  return avg_skip_first(exec_s);
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Fig 8 -- Colza vs Damaris vs DataSpaces (Mandelbulb)",
           "avg pipeline execution time, first iteration discarded (paper "
           "Fig 8)");
  note("paper: Colza+MoNA ~= Colza+MPI < DataSpaces-ish < Damaris; "
       "DataSpaces between the two Colza variants");

  const double colza_mona = run_colza(net::Profile::mona());
  const double colza_mpi = run_colza(net::Profile::cray_mpich());
  const double damaris = run_damaris();
  const double dataspaces = run_dataspaces();

  Table table({"framework", "pipeline_s", "vs_colza_mona"});
  table.row({"colza+mona", fmt("%.4f", colza_mona), "1.000"});
  table.row({"colza+mpi", fmt("%.4f", colza_mpi),
             fmt("%.3f", colza_mpi / colza_mona)});
  table.row({"damaris", fmt("%.4f", damaris),
             fmt("%.3f", damaris / colza_mona)});
  table.row({"dataspaces", fmt("%.4f", dataspaces),
             fmt("%.3f", dataspaces / colza_mona)});
  table.print("fig08");
  return 0;
}

// Fig 7: execution time of the Deep Water Impact pipeline per iteration,
// with MPI and MoNA communication layers, at several static staging-area
// sizes. Unlike Mandelbulb/Gray-Scott, the payload GROWS with the iteration
// number, so every curve rises over time and larger staging areas stay
// lower; MPI and MoNA curves track each other.
//
// Paper setup: 32 client processes on 2 nodes read 512 VTU files per
// iteration; Colza runs with 8/16/32/64 processes. This reproduction runs
// the DWI proxy (DESIGN.md) with scaled-down meshes.
#include <cstdio>
#include <map>

#include "apps/dwi_proxy.hpp"
#include "bench/bench_util.hpp"
#include "bench/colza_harness.hpp"

namespace {

using namespace colza;
using namespace colza::bench;

constexpr int kClients = 8;
constexpr int kIterations = 30;

apps::DwiParams dwi_params() {
  apps::DwiParams p;
  p.blocks = 32;
  p.base_edge = 20;
  p.growth_per_iteration = 4;
  return p;
}

std::vector<double> run_scale(int servers, const net::Profile& profile) {
  HarnessConfig cfg;
  cfg.servers = servers;
  cfg.servers_per_node = 8;
  cfg.clients = kClients;
  cfg.clients_per_node = 16;
  cfg.server_profile = profile;
  cfg.pipeline_json =
      R"({"preset":"dwi","width":64,"height":64,"resample_dims":[24,24,24]})";

  const apps::DwiParams params = dwi_params();
  ColzaPipelineHarness harness(cfg);
  auto& sim = harness.sim();
  const std::uint32_t per_client = params.blocks / kClients;
  auto gen = [&](int client, std::uint64_t iteration) {
    std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
    for (std::uint32_t b = 0; b < per_client; ++b) {
      const std::uint32_t id =
          static_cast<std::uint32_t>(client) * per_client + b;
      blocks.emplace_back(id, sim.charge_scoped([&] {
        return vis::DataSet{
            apps::dwi_block(params, static_cast<int>(iteration), id)};
      }));
    }
    return blocks;
  };
  auto times = harness.run(kIterations, gen);
  std::vector<double> exec_s;
  for (const auto& t : times) exec_s.push_back(des::to_seconds(t.execute));
  return exec_s;
}

}  // namespace

int main() {
  using namespace colza::bench;
  headline("Fig 7 -- Deep Water Impact pipeline vs iteration, MPI vs MoNA",
           "rendering/pipeline time per iteration at several scales (paper "
           "Fig 7)");
  note("paper: curves rise with iteration (growing mesh); more Colza "
       "processes => lower curve; MPI ~= MoNA");

  const std::vector<int> scales{8, 16, 32};
  std::map<std::string, std::vector<double>> series;
  for (int s : scales) {
    series["mpi" + std::to_string(s)] =
        run_scale(s, net::Profile::cray_mpich());
    series["mona" + std::to_string(s)] = run_scale(s, net::Profile::mona());
  }

  std::vector<std::string> cols{"iteration"};
  for (int s : scales) {
    cols.push_back("mpi" + std::to_string(s) + "_s");
    cols.push_back("mona" + std::to_string(s) + "_s");
  }
  Table table(cols);
  for (int it = 0; it < kIterations; ++it) {
    std::vector<std::string> row{std::to_string(it + 1)};
    for (int s : scales) {
      row.push_back(fmt("%.4f", series["mpi" + std::to_string(s)]
                                       [static_cast<std::size_t>(it)]));
      row.push_back(fmt("%.4f", series["mona" + std::to_string(s)]
                                       [static_cast<std::size_t>(it)]));
    }
    table.row(row);
  }
  table.print("fig07");

  // Shape checks mirrored in the output.
  const auto& small = series["mona8"];
  const auto& large = series["mona32"];
  std::printf("\nshape: iter30/iter2 growth at 8 procs = %.1fx; "
              "8-proc vs 32-proc at iter 30 = %.1fx\n",
              small.back() / small[1], small.back() / large.back());
  return 0;
}

// Scenario runner: drives a full Colza deployment from a JSON description,
// the way an operator's job script would. Covers deployment, application
// selection, pipeline configuration, an elastic schedule, and optional
// Chrome tracing -- without writing C++ for each experiment.
//
// Usage:  scenario_runner [scenario.json]
// With no argument a built-in demonstration scenario is used (printed first
// so it can serve as a template).
//
// Schema (all fields optional unless noted):
// {
//   "servers": 4, "servers_per_node": 4,
//   "clients": 8, "clients_per_node": 8,
//   "iterations": 10,
//   "app": "mandelbulb" | "gray-scott" | "dwi",        // required
//   "app_options": { ... },          // n / blocks / base_edge / growth ...
//   "pipeline": { ... catalyst config, see PipelineScript::from_json ... },
//   "server_comm": "mona" | "cray-mpich",
//   "elastic": [ {"iteration": 5, "add_servers": 2}, ... ],
//   "compute_seconds_between_iterations": 2.0,
//   "trace": "/tmp/trace.json",
//   "seed": 42
// }
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "apps/dwi_proxy.hpp"
#include "apps/gray_scott.hpp"
#include "apps/mandelbulb.hpp"
#include "bench/colza_harness.hpp"
#include "common/json.hpp"

using namespace colza;
using namespace colza::bench;

namespace {

constexpr const char* kDefaultScenario = R"({
  "servers": 2, "clients": 4, "iterations": 6,
  "app": "gray-scott",
  "app_options": { "n": 32, "steps_per_iteration": 20 },
  "pipeline": { "preset": "gray-scott", "width": 128, "height": 128 },
  "elastic": [ { "iteration": 4, "add_servers": 2 } ],
  "compute_seconds_between_iterations": 2.0
})";

struct Scenario {
  HarnessConfig harness;
  int iterations = 6;
  std::string app;
  json::Value app_options;
  std::vector<std::pair<std::uint64_t, int>> elastic;  // iteration -> +N
  std::string trace_path;
};

Scenario parse_scenario(const json::Value& v) {
  Scenario s;
  s.harness.servers = static_cast<int>(v.number_or("servers", 2));
  s.harness.servers_per_node =
      static_cast<int>(v.number_or("servers_per_node", 4));
  s.harness.clients = static_cast<int>(v.number_or("clients", 4));
  s.harness.clients_per_node =
      static_cast<int>(v.number_or("clients_per_node", 8));
  s.harness.seed = static_cast<std::uint64_t>(v.number_or("seed", 42));
  s.harness.compute_between_iterations = des::from_seconds(
      v.number_or("compute_seconds_between_iterations", 0.0));
  if (v.string_or("server_comm", "mona") == "cray-mpich")
    s.harness.server_profile = net::Profile::cray_mpich();
  if (const auto* p = v.find("pipeline"); p != nullptr)
    s.harness.pipeline_json = p->dump();
  s.iterations = static_cast<int>(v.number_or("iterations", 6));
  s.app = v.string_or("app", "");
  if (const auto* o = v.find("app_options"); o != nullptr) s.app_options = *o;
  if (const auto* e = v.find("elastic"); e != nullptr && e->is_array()) {
    for (const auto& step : e->as_array()) {
      s.elastic.emplace_back(
          static_cast<std::uint64_t>(step.number_or("iteration", 0)),
          static_cast<int>(step.number_or("add_servers", 1)));
    }
  }
  s.trace_path = v.string_or("trace", "");
  return s;
}

// Builds the per-client data generator for the selected application.
DataGen make_generator(const Scenario& s, ColzaPipelineHarness& harness,
                       std::vector<std::unique_ptr<apps::GrayScott3D>>& solvers) {
  auto& sim = harness.sim();
  const int clients = s.harness.clients;

  if (s.app == "mandelbulb") {
    auto mb = std::make_shared<apps::MandelbulbParams>();
    const auto edge =
        static_cast<std::uint32_t>(s.app_options.number_or("edge", 16));
    mb->nx = mb->ny = mb->nz = edge;
    const int per_client =
        static_cast<int>(s.app_options.number_or("blocks_per_client", 2));
    mb->total_blocks = static_cast<std::uint32_t>(clients * per_client);
    return [&sim, mb, per_client](int client, std::uint64_t) {
      std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
      for (int b = 0; b < per_client; ++b) {
        const auto id = static_cast<std::uint64_t>(client * per_client + b);
        blocks.emplace_back(id, sim.charge_scoped([&] {
          return vis::DataSet{apps::mandelbulb_block(
              *mb, static_cast<std::uint32_t>(id))};
        }));
      }
      return blocks;
    };
  }

  if (s.app == "gray-scott") {
    apps::GrayScott3D::Params p;
    p.n = static_cast<std::uint32_t>(s.app_options.number_or("n", 32));
    p.steps_per_iteration =
        static_cast<int>(s.app_options.number_or("steps_per_iteration", 10));
    solvers.resize(static_cast<std::size_t>(clients));
    return [&harness, &solvers, p, clients](int client, std::uint64_t)
               -> std::vector<std::pair<std::uint64_t, vis::DataSet>> {
      auto& solver = solvers[static_cast<std::size_t>(client)];
      if (solver == nullptr)
        solver = std::make_unique<apps::GrayScott3D>(p, client, clients);
      solver->step(&harness.client_comm(client)).check();
      std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
      blocks.emplace_back(static_cast<std::uint64_t>(client),
                          harness.sim().charge_scoped([&] {
                            return vis::DataSet{solver->block()};
                          }));
      return blocks;
    };
  }

  if (s.app == "dwi") {
    auto p = std::make_shared<apps::DwiParams>();
    p->blocks =
        static_cast<std::uint32_t>(s.app_options.number_or("blocks", 16));
    p->base_edge =
        static_cast<std::uint32_t>(s.app_options.number_or("base_edge", 20));
    p->growth_per_iteration = static_cast<std::uint32_t>(
        s.app_options.number_or("growth_per_iteration", 3));
    p->total_iterations = 1000000;  // the scenario decides when to stop
    const std::uint32_t per_client =
        p->blocks / static_cast<std::uint32_t>(clients);
    return [&sim, p, per_client](int client, std::uint64_t iteration) {
      std::vector<std::pair<std::uint64_t, vis::DataSet>> blocks;
      for (std::uint32_t b = 0; b < per_client; ++b) {
        const std::uint32_t id =
            static_cast<std::uint32_t>(client) * per_client + b;
        blocks.emplace_back(id, sim.charge_scoped([&] {
          return vis::DataSet{
              apps::dwi_block(*p, static_cast<int>(iteration), id)};
        }));
      }
      return blocks;
    };
  }

  throw std::runtime_error("scenario: unknown app '" + s.app +
                           "' (mandelbulb | gray-scott | dwi)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDefaultScenario;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open scenario file %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::printf("no scenario file given; using the built-in demo:\n%s\n\n",
                kDefaultScenario);
  }

  Scenario scenario = parse_scenario(json::parse(text));
  ColzaPipelineHarness harness(scenario.harness);
  if (!scenario.trace_path.empty())
    harness.sim().start_trace(scenario.trace_path);

  std::vector<std::unique_ptr<apps::GrayScott3D>> solvers;
  DataGen gen = make_generator(scenario, harness, solvers);

  int next_node = 500;
  BeforeIteration before = [&](std::uint64_t iteration) {
    for (const auto& [at, count] : scenario.elastic) {
      if (at != iteration) continue;
      std::printf("-- iteration %llu: adding %d server(s)\n",
                  static_cast<unsigned long long>(iteration), count);
      for (int i = 0; i < count; ++i)
        harness.add_server(static_cast<net::NodeId>(next_node++));
      harness.sim().sleep_for(des::seconds(8));
    }
  };

  auto results = harness.run(scenario.iterations, gen, before);
  std::printf("\n%-10s %-8s %-12s %-12s %-12s %-12s\n", "iteration",
              "servers", "activate_ms", "stage_ms", "execute_ms",
              "deactivate_ms");
  for (const auto& t : results) {
    std::printf("%-10llu %-8zu %-12.3f %-12.3f %-12.3f %-12.3f\n",
                static_cast<unsigned long long>(t.iteration), t.servers,
                des::to_millis(t.activate), des::to_millis(t.stage),
                des::to_millis(t.execute), des::to_millis(t.deactivate));
  }
  if (!scenario.trace_path.empty()) {
    harness.sim().stop_trace();
    std::printf("\ntrace written to %s (open in chrome://tracing)\n",
                scenario.trace_path.c_str());
  }
  return 0;
}

// Admin walkthrough: exercises the separate admin library the way an
// external operator tool would (paper S II-B) -- listing and managing
// pipelines, inspecting the membership, and requesting a server to leave.
#include <cstdio>

#include "colza/admin.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

using namespace colza;

int main() {
  des::Simulation sim;
  net::Network net(sim);
  StagingArea area(net, ServerConfig{});
  area.launch_initial(3, /*base_node=*/10);
  sim.run_until(des::seconds(30));

  auto& tool_proc = net.create_process(0);
  rpc::Engine tool(tool_proc, net::Profile::mona());

  tool_proc.spawn("admin-tool", [&] {
    Admin admin(tool);
    const auto servers = area.alive_addresses();
    std::printf("staging area members:");
    for (net::ProcId s : servers) std::printf(" %s", net::to_string(s).c_str());
    std::printf("\n");

    // Deploy two pipelines on every server, each with its own JSON config.
    for (net::ProcId s : servers) {
      admin.create_pipeline(s, "iso", "catalyst",
                            R"({"mode":"isosurface","field":"v"})")
          .check();
      admin.create_pipeline(s, "vol", "catalyst",
                            R"({"mode":"volume","field":"rho"})")
          .check();
    }
    auto names = admin.list_pipelines(servers[0]);
    names.status().check();
    std::printf("pipelines on %s:", net::to_string(servers[0]).c_str());
    for (const auto& n : *names) std::printf(" %s", n.c_str());
    std::printf("\n");

    // Error handling: duplicate names and unknown types are rejected.
    auto dup = admin.create_pipeline(servers[0], "iso", "catalyst");
    std::printf("re-creating 'iso': %s\n", dup.to_string().c_str());
    auto bad = admin.create_pipeline(servers[0], "x", "no-such-type");
    std::printf("unknown type: %s\n", bad.to_string().c_str());

    // Tear one pipeline down everywhere.
    for (net::ProcId s : servers) admin.destroy_pipeline(s, "vol").check();

    // Scale down: ask the last server to leave, then watch the view shrink.
    std::printf("requesting %s to leave...\n",
                net::to_string(servers.back()).c_str());
    admin.request_leave(servers.back()).check();
    sim.sleep_for(des::seconds(12));
    std::printf("alive servers now: %zu\n", area.alive_count());
  });
  sim.run();
  return 0;
}

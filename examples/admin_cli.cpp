// Admin walkthrough: exercises the separate admin library the way an
// external operator tool would (paper S II-B) -- listing and managing
// pipelines, inspecting the membership, requesting a server to leave, and
// driving the flow-control QoS knobs (docs/flow.md).
//
// Besides the default walkthrough, two operator verbs run a minimal
// staging area and issue exactly one admin RPC each:
//   admin_cli set-weight <pipeline> <w>   # weight the pipeline's DRR share
//   admin_cli show-quota                  # dump a server's quota document
//   admin_cli show-integrity              # dump per-server integrity counters
//   admin_cli show-viewers                # dump per-server viewer-tier stats
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "colza/admin.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

using namespace colza;

namespace {

// A staging area with flow control on, so the QoS verbs have real state to
// touch (the default ServerConfig keeps flow disabled).
ServerConfig flow_config() {
  ServerConfig config;
  config.flow.budget_bytes = 64 << 20;
  return config;
}

int run_verb(int argc, char** argv) {
  const std::string verb = argv[1];
  des::Simulation sim;
  net::Network net(sim);
  StagingArea area(net, flow_config());
  area.launch_initial(2, /*base_node=*/10);
  sim.run_until(des::seconds(30));

  auto& tool_proc = net.create_process(0);
  rpc::Engine tool(tool_proc, net::Profile::mona());
  int rc = 0;

  tool_proc.spawn("admin-tool", [&] {
    Admin admin(tool);
    const auto servers = area.alive_addresses();

    if (verb == "set-weight") {
      if (argc != 4) {
        std::fprintf(stderr, "usage: admin_cli set-weight <pipeline> <w>\n");
        rc = 2;
        return;
      }
      const std::string pipeline = argv[2];
      const auto weight =
          static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10));
      for (net::ProcId s : servers) {
        admin.create_pipeline(s, pipeline, "catalyst").check();
        Status st = admin.set_weight(s, pipeline, weight);
        std::printf("set-weight %s w=%u on %s: %s\n", pipeline.c_str(),
                    weight, net::to_string(s).c_str(),
                    st.to_string().c_str());
        if (!st.ok()) rc = 1;
      }
      return;
    }

    if (verb == "show-quota") {
      for (net::ProcId s : servers) {
        auto quota = admin.get_quota(s);
        quota.status().check();
        std::printf("quota on %s: %s\n", net::to_string(s).c_str(),
                    quota->dump().c_str());
      }
      return;
    }

    if (verb == "show-integrity") {
      // Verified / repaired / unrepairable counts per daemon, the way an
      // operator would watch for a node with failing memory: a server whose
      // mismatch count keeps climbing is rotting bytes at rest.
      for (net::ProcId s : servers) {
        auto integrity = admin.get_integrity(s);
        integrity.status().check();
        std::printf("integrity on %s: %s\n", net::to_string(s).c_str(),
                    integrity->dump().c_str());
      }
      return;
    }

    if (verb == "show-viewers") {
      // Sessions / renders / cache hit rate per daemon, the way an operator
      // would check whether a flash crowd of observers is being absorbed by
      // the frame cache or forcing extra renders (docs/viewer.md).
      for (net::ProcId s : servers) {
        auto viewers = admin.get_viewers(s);
        viewers.status().check();
        std::printf("viewers on %s: %s\n", net::to_string(s).c_str(),
                    viewers->dump().c_str());
      }
      return;
    }

    std::fprintf(stderr,
                 "unknown verb '%s'\nknown verbs:\n"
                 "  set-weight <pipeline> <w>  weight the pipeline's DRR share\n"
                 "  show-quota                 dump per-server quota documents\n"
                 "  show-integrity             dump per-server integrity "
                 "counters\n"
                 "  show-viewers               dump per-server viewer-tier "
                 "stats\n",
                 verb.c_str());
    rc = 2;
  });
  sim.run();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return run_verb(argc, argv);

  des::Simulation sim;
  net::Network net(sim);
  StagingArea area(net, flow_config());
  area.launch_initial(3, /*base_node=*/10);
  sim.run_until(des::seconds(30));

  auto& tool_proc = net.create_process(0);
  rpc::Engine tool(tool_proc, net::Profile::mona());

  tool_proc.spawn("admin-tool", [&] {
    Admin admin(tool);
    const auto servers = area.alive_addresses();
    std::printf("staging area members:");
    for (net::ProcId s : servers) std::printf(" %s", net::to_string(s).c_str());
    std::printf("\n");

    // Deploy two pipelines on every server, each with its own JSON config.
    for (net::ProcId s : servers) {
      admin.create_pipeline(s, "iso", "catalyst",
                            R"({"mode":"isosurface","field":"v"})")
          .check();
      admin.create_pipeline(s, "vol", "catalyst",
                            R"({"mode":"volume","field":"rho"})")
          .check();
    }
    auto names = admin.list_pipelines(servers[0]);
    names.status().check();
    std::printf("pipelines on %s:", net::to_string(servers[0]).c_str());
    for (const auto& n : *names) std::printf(" %s", n.c_str());
    std::printf("\n");

    // QoS: give 'iso' a 3x staging-bandwidth share over 'vol', then read
    // the quota document back the way a monitor would.
    for (net::ProcId s : servers) admin.set_weight(s, "iso", 3).check();
    auto quota = admin.get_quota(servers[0]);
    quota.status().check();
    std::printf("quota on %s: %s\n", net::to_string(servers[0]).c_str(),
                quota->dump().c_str());

    // Error handling: duplicate names and unknown types are rejected.
    auto dup = admin.create_pipeline(servers[0], "iso", "catalyst");
    std::printf("re-creating 'iso': %s\n", dup.to_string().c_str());
    auto bad = admin.create_pipeline(servers[0], "x", "no-such-type");
    std::printf("unknown type: %s\n", bad.to_string().c_str());
    auto zero = admin.set_weight(servers[0], "iso", 0);
    std::printf("zero weight: %s\n", zero.to_string().c_str());

    // Tear one pipeline down everywhere.
    for (net::ProcId s : servers) admin.destroy_pipeline(s, "vol").check();

    // Scale down: ask the last server to leave, then watch the view shrink.
    std::printf("requesting %s to leave...\n",
                net::to_string(servers.back()).c_str());
    admin.request_leave(servers.back()).check();
    sim.sleep_for(des::seconds(12));
    std::printf("alive servers now: %zu\n", area.alive_count());
  });
  sim.run();
  return 0;
}

// Gray-Scott in situ: a 4-rank reaction-diffusion simulation (real stencil
// solver with halo exchange over its own MoNA communicator) coupled to a
// 2-server Colza staging area running the paper's Gray-Scott pipeline
// (multi-level isosurfaces + clip, Fig 3a). Writes one image per staged
// iteration to /tmp/colza_grayscott_<iter>.ppm.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/gray_scott.hpp"
#include "colza/admin.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

using namespace colza;

int main() {
  constexpr int kRanks = 4;
  constexpr int kIterations = 8;

  des::Simulation sim;
  net::Network net(sim);

  StagingArea area(net, ServerConfig{});
  area.launch_initial(2, /*base_node=*/10);
  sim.run_until(des::seconds(30));

  // Simulation ranks with their own communicator (their "MPI world").
  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<net::ProcId> addrs;
  for (int r = 0; r < kRanks; ++r) {
    auto& p = net.create_process(static_cast<net::NodeId>(r / 4));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p));
    clients.push_back(std::make_unique<Client>(p));
    addrs.push_back(p.id());
  }
  std::vector<std::shared_ptr<mona::Communicator>> world;
  for (int r = 0; r < kRanks; ++r)
    world.push_back(insts[static_cast<std::size_t>(r)]->comm_create(addrs));

  apps::GrayScott::Params params;
  params.n = 48;
  params.steps_per_iteration = 40;

  for (int r = 0; r < kRanks; ++r) {
    procs[static_cast<std::size_t>(r)]->spawn("gs-rank", [&, r] {
      auto& comm = *world[static_cast<std::size_t>(r)];
      if (r == 0) {
        Admin admin(clients[0]->engine());
        const char* config = R"({
          "preset": "gray-scott", "width": 256, "height": 256,
          "save_path": "/tmp/colza_grayscott_{}.ppm"
        })";
        for (net::ProcId server : area.alive_addresses()) {
          admin.create_pipeline(server, "gs", "catalyst", config).check();
        }
      }
      comm.barrier().check();

      auto handle = DistributedPipelineHandle::lookup(
          *clients[static_cast<std::size_t>(r)], area.bootstrap().contacts(),
          "gs");
      handle.status().check();

      apps::GrayScott solver(params, r, kRanks);
      for (int iter = 1; iter <= kIterations; ++iter) {
        solver.step(&comm).check();  // real solver steps + halo exchange
        const auto it = static_cast<std::uint64_t>(iter);
        comm.barrier().check();
        if (r == 0) handle->activate(it).check();
        comm.barrier().check();
        if (r != 0) {
          (void)handle->refresh_view();  // simple view sync for the example
        }
        handle->stage(it, static_cast<std::uint64_t>(r),
                      vis::DataSet{solver.block()})
            .check();
        comm.barrier().check();
        if (r == 0) {
          handle->execute(it).check();
          handle->deactivate(it).check();
          std::printf("iteration %d rendered (virtual t=%.2f s)\n", iter,
                      des::to_seconds(sim.now()));
        }
        comm.barrier().check();
      }
    });
  }
  sim.run();
  std::printf("wrote /tmp/colza_grayscott_{1..%d}.ppm\n", kIterations);
  return 0;
}

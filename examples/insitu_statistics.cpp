// Two pipelines on one staging area: the same staged Gray-Scott data feeds
// BOTH a rendering pipeline ("catalyst") and a statistics pipeline
// ("histogram"). This is the paper's late-binding story (S II-B): "deploy
// the staging area without any pipeline to begin with, and later decide
// which pipelines to load and execute based on what they see happening" --
// here the histogram pipeline is added mid-run, once the rendering shows
// structure emerging.
#include <cstdio>

#include "apps/gray_scott.hpp"
#include "colza/admin.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

using namespace colza;

int main() {
  constexpr int kIterations = 8;

  des::Simulation sim;
  net::Network net(sim);
  StagingArea area(net, ServerConfig{});
  area.launch_initial(2, 10);
  sim.run_until(des::seconds(30));

  auto& proc = net.create_process(0);
  Client client(proc);

  proc.spawn("app", [&] {
    Admin admin(client.engine());
    // Start with only the rendering pipeline deployed.
    for (net::ProcId s : area.alive_addresses()) {
      admin
          .create_pipeline(s, "render", "catalyst",
                           R"({"preset":"gray-scott","width":128,"height":128})")
          .check();
    }
    auto render = DistributedPipelineHandle::lookup(
        client, area.bootstrap().contacts(), "render");
    render.status().check();

    apps::GrayScott3D::Params params;
    params.n = 32;
    params.steps_per_iteration = 30;
    apps::GrayScott3D solver(params, 0, 1);

    DistributedPipelineHandle* hist_handle = nullptr;
    std::optional<DistributedPipelineHandle> hist;

    for (int iter = 1; iter <= kIterations; ++iter) {
      solver.step(nullptr).check();
      const auto it = static_cast<std::uint64_t>(iter);
      const vis::DataSet block{solver.block()};

      // The operator decides mid-run that statistics are worth collecting.
      if (iter == 4) {
        std::printf("-- iteration %d: deploying the histogram pipeline\n",
                    iter);
        for (net::ProcId s : area.alive_addresses()) {
          admin
              .create_pipeline(
                  s, "stats", "histogram",
                  R"({"field":"v","bins":10,"range_lo":0,"range_hi":0.5})")
              .check();
        }
        hist = *DistributedPipelineHandle::lookup(
            client, area.bootstrap().contacts(), "stats");
        hist_handle = &*hist;
      }

      // Drive both pipelines over the same data.
      render->activate(it).check();
      render->stage(it, 0, block).check();
      render->execute(it).check();
      render->deactivate(it).check();

      if (hist_handle != nullptr) {
        hist_handle->activate(it).check();
        hist_handle->stage(it, 0, block).check();
        hist_handle->execute(it).check();
        hist_handle->deactivate(it).check();

        auto stats = admin.get_stats(hist_handle->view()[0], "stats");
        stats.status().check();
        const auto& rec = stats->find("iterations")->as_array().back();
        std::printf("iter %d: v in [%.3f, %.3f], histogram:", iter,
                    rec.number_or("min", 0), rec.number_or("max", 0));
        for (const auto& c : rec.find("counts")->as_array()) {
          std::printf(" %g", c.as_number());
        }
        std::printf("\n");
      } else {
        std::printf("iter %d: rendered only\n", iter);
      }
    }
  });
  sim.run();
  return 0;
}

// Quickstart: the smallest end-to-end Colza session.
//
//  1. Create a simulated platform (virtual-time DES + modeled fabric).
//  2. Stand up a 2-server Colza staging area with SSG membership.
//  3. Deploy a Catalyst pipeline on both servers through the admin API.
//  4. From a client process, run one in situ iteration:
//     activate -> stage -> execute -> deactivate.
//  5. The staging area renders an isosurface of a sphere field and the
//     root server writes the composited image to /tmp/colza_quickstart.ppm.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "colza/admin.hpp"
#include "colza/catalyst_backend.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"
#include "vis/data.hpp"

using namespace colza;

// A little data source: a radial distance field on a uniform grid.
static vis::UniformGrid make_block() {
  vis::UniformGrid g;
  g.dims = {32, 32, 32};
  std::vector<float> f(g.point_count());
  for (std::uint32_t k = 0; k < 32; ++k)
    for (std::uint32_t j = 0; j < 32; ++j)
      for (std::uint32_t i = 0; i < 32; ++i)
        f[g.point_index(i, j, k)] =
            (g.point(i, j, k) - vis::Vec3{16, 16, 16}).norm();
  g.point_data.add(vis::DataArray::make<float>("dist", f));
  return g;
}

int main() {
  // 1. Platform: one virtual timeline, one modeled fabric.
  des::Simulation sim;
  net::Network net(sim);

  // 2. Staging area: two Colza daemons on two nodes.
  StagingArea area(net, ServerConfig{});
  area.launch_initial(/*n=*/2, /*base_node=*/10);
  sim.run_until(des::seconds(30));  // daemons launch and form the group
  std::printf("staging area up: %zu servers\n", area.alive_count());

  // 3 + 4. A client drives the admin and iteration protocol from a fiber.
  auto& client_proc = net.create_process(0);
  Client client(client_proc);
  client_proc.spawn("app", [&] {
    Admin admin(client.engine());
    const char* config = R"({
      "mode": "isosurface", "field": "dist",
      "iso_values": [10.0], "range_hi": 28.0,
      "width": 256, "height": 256,
      "save_path": "/tmp/colza_quickstart.ppm"
    })";
    for (net::ProcId server : area.alive_addresses()) {
      admin.create_pipeline(server, "demo", "catalyst", config).check();
    }

    auto handle = DistributedPipelineHandle::lookup(
        client, area.bootstrap().contacts(), "demo");
    handle.status().check();
    std::printf("pipeline 'demo' deployed on %zu servers\n",
                handle->server_count());

    handle->activate(1).check();
    handle->stage(1, /*block_id=*/0, vis::DataSet{make_block()}).check();
    handle->execute(1).check();
    handle->deactivate(1).check();
    std::printf("iteration 1 done at virtual t=%.3f s\n",
                des::to_seconds(sim.now()));
  });
  sim.run();

  std::printf("image written to /tmp/colza_quickstart.ppm\n");
  return 0;
}

// Mandelbulb in situ: several client ranks, each owning multiple blocks of
// the fractal grid (the paper's z-partitioned block decomposition), staged
// to a 4-server Colza area and contoured with a single-level isosurface.
// Demonstrates non-blocking staging (istage) to overlap block uploads.
// Writes /tmp/colza_mandelbulb.ppm.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/mandelbulb.hpp"
#include "colza/admin.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

using namespace colza;

int main() {
  constexpr int kClients = 4;
  constexpr int kBlocksPerClient = 4;

  des::Simulation sim;
  net::Network net(sim);
  StagingArea area(net, ServerConfig{});
  area.launch_initial(4, /*base_node=*/10);
  sim.run_until(des::seconds(30));

  apps::MandelbulbParams mb;
  mb.nx = mb.ny = mb.nz = 24;
  mb.total_blocks = kClients * kBlocksPerClient;

  std::vector<net::Process*> procs;
  std::vector<std::unique_ptr<mona::Instance>> insts;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<net::ProcId> addrs;
  for (int c = 0; c < kClients; ++c) {
    auto& p = net.create_process(static_cast<net::NodeId>(c));
    procs.push_back(&p);
    insts.push_back(std::make_unique<mona::Instance>(p));
    clients.push_back(std::make_unique<Client>(p));
    addrs.push_back(p.id());
  }
  std::vector<std::shared_ptr<mona::Communicator>> world;
  for (int c = 0; c < kClients; ++c)
    world.push_back(insts[static_cast<std::size_t>(c)]->comm_create(addrs));

  for (int c = 0; c < kClients; ++c) {
    procs[static_cast<std::size_t>(c)]->spawn("mb-rank", [&, c] {
      auto& comm = *world[static_cast<std::size_t>(c)];
      if (c == 0) {
        Admin admin(clients[0]->engine());
        const char* config = R"({
          "preset": "mandelbulb", "width": 512, "height": 512,
          "save_path": "/tmp/colza_mandelbulb.ppm"
        })";
        for (net::ProcId server : area.alive_addresses()) {
          admin.create_pipeline(server, "mb", "catalyst", config).check();
        }
      }
      comm.barrier().check();

      auto handle = DistributedPipelineHandle::lookup(
          *clients[static_cast<std::size_t>(c)], area.bootstrap().contacts(),
          "mb");
      handle.status().check();

      comm.barrier().check();
      if (c == 0) handle->activate(1).check();
      comm.barrier().check();

      // Generate this rank's blocks (real fractal compute, charged to the
      // virtual clock) and stage them concurrently with istage().
      std::vector<std::vector<std::byte>> payloads;
      std::vector<AsyncOp> ops;
      for (int b = 0; b < kBlocksPerClient; ++b) {
        const auto id = static_cast<std::uint32_t>(c * kBlocksPerClient + b);
        vis::UniformGrid block =
            sim.charge_scoped([&] { return apps::mandelbulb_block(mb, id); });
        payloads.push_back(vis::serialize_dataset(vis::DataSet{block}));
        ops.push_back(handle->istage(1, id, payloads.back()));
      }
      for (auto& op : ops) op.wait().check();
      comm.barrier().check();

      if (c == 0) {
        handle->execute(1).check();
        handle->deactivate(1).check();
        std::printf("rendered %u blocks across %zu servers at t=%.2f s\n",
                    mb.total_blocks, handle->server_count(),
                    des::to_seconds(sim.now()));
      }
    });
  }
  sim.run();
  std::printf("wrote /tmp/colza_mandelbulb.ppm\n");
  return 0;
}

// Resilience + autoscaling walkthrough: the two future-work features from
// the paper's conclusion running together.
//
//  * run_resilient_iteration() transparently recovers when a Colza server
//    crashes mid-iteration (SWIM detects the death, survivors revoke the
//    frozen communicator ULFM-style, the client re-runs the iteration on
//    the survivors);
//  * AutoScaler then notices the smaller staging area is too slow for the
//    growing Deep Water Impact mesh and requests replacement nodes.
#include <cstdio>

#include "apps/dwi_proxy.hpp"
#include "colza/admin.hpp"
#include "colza/autoscale.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "colza/fault.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

using namespace colza;

int main() {
  constexpr int kIterations = 10;

  des::Simulation sim;
  net::Network net(sim);
  StagingArea area(net, ServerConfig{});
  area.launch_initial(4, /*base_node=*/10);
  sim.run_until(des::seconds(30));

  apps::DwiParams params;
  params.blocks = 16;
  params.base_edge = 24;
  params.growth_per_iteration = 5;
  params.total_iterations = kIterations;

  const char* config =
      R"({"preset":"dwi","width":128,"height":128,"resample_dims":[24,24,24]})";

  auto& client_proc = net.create_process(0);
  Client client(client_proc);

  // Crash one server, out of the blue, in the middle of iteration 4.
  sim.schedule_at(des::seconds(34), [&] {
    std::printf("!!! killing server %s (unplanned)\n",
                net::to_string(area.servers()[1]->address()).c_str());
    area.servers()[1]->process().kill();
  });

  client_proc.spawn("app", [&] {
    Admin admin(client.engine());
    for (net::ProcId s : area.alive_addresses()) {
      admin.create_pipeline(s, "dwi", "catalyst", config).check();
    }
    auto handle = DistributedPipelineHandle::lookup(
        client, area.bootstrap().contacts(), "dwi");
    handle.status().check();

    AutoScalePolicy policy;
    policy.target_execute = des::milliseconds(30);
    policy.window = 2;
    AutoScaler scaler(policy);
    int next_node = 100;

    for (int iter = 1; iter <= kIterations; ++iter) {
      // Pre-generate and serialize this iteration's blocks, so a recovery
      // can re-stage them without recomputation.
      std::vector<IterationBlock> blocks;
      for (std::uint32_t b = 0; b < params.blocks; ++b) {
        blocks.emplace_back(
            b, sim.charge_scoped([&] {
              return vis::serialize_dataset(
                  vis::DataSet{apps::dwi_block(params, iter, b)});
            }));
      }
      const des::Time t0 = sim.now();
      Status s =
          run_resilient_iteration(*handle, static_cast<std::uint64_t>(iter),
                                  blocks);
      s.check();
      const des::Duration exec = sim.now() - t0;
      std::printf("iter %2d: %zu servers, iteration %.3f s\n", iter,
                  handle->server_count(), des::to_seconds(exec));

      switch (scaler.observe(exec, handle->server_count())) {
        case ScaleDecision::up:
          std::printf("  autoscaler: requesting one more node\n");
          area.launch_one(static_cast<net::NodeId>(next_node++),
                          [&](Server& srv) {
                            srv.create_pipeline("dwi", "catalyst", config)
                                .check();
                          });
          sim.sleep_for(des::seconds(8));
          break;
        case ScaleDecision::down:
          std::printf("  autoscaler: releasing one node\n");
          admin.request_leave(handle->view().back()).check();
          sim.sleep_for(des::seconds(8));
          break;
        case ScaleDecision::hold: break;
      }
    }
  });
  sim.run();
  return 0;
}

// Deep Water Impact + elasticity: the paper's headline scenario (Fig 10) as
// a runnable example. The proxy's mesh grows every iteration; from iteration
// 6 the example adds one Colza server every other iteration, and at the end
// it scales back down through the admin API. Prints the per-iteration
// pipeline time and the staging-area size; writes the final frame to
// /tmp/colza_dwi.ppm.
#include <cstdio>
#include <memory>

#include "apps/dwi_proxy.hpp"
#include "colza/admin.hpp"
#include "colza/client.hpp"
#include "colza/deploy.hpp"
#include "des/simulation.hpp"
#include "net/network.hpp"

using namespace colza;

int main() {
  constexpr int kIterations = 12;

  des::Simulation sim;
  net::Network net(sim);
  StagingArea area(net, ServerConfig{});
  area.launch_initial(2, /*base_node=*/10);
  sim.run_until(des::seconds(30));

  apps::DwiParams params;
  params.blocks = 16;
  params.base_edge = 24;
  params.growth_per_iteration = 6;
  params.total_iterations = kIterations;

  const char* config = R"({
    "preset": "dwi", "width": 256, "height": 256,
    "resample_dims": [32,32,32],
    "save_path": "/tmp/colza_dwi.ppm"
  })";

  auto& client_proc = net.create_process(0);
  Client client(client_proc);
  int next_node = 100;

  client_proc.spawn("dwi-app", [&] {
    Admin admin(client.engine());
    for (net::ProcId server : area.alive_addresses()) {
      admin.create_pipeline(server, "dwi", "catalyst", config).check();
    }
    auto handle = DistributedPipelineHandle::lookup(
        client, area.bootstrap().contacts(), "dwi");
    handle.status().check();

    for (int iter = 1; iter <= kIterations; ++iter) {
      // Elastic scale-up: one more server every other iteration from #6.
      if (iter >= 6 && iter % 2 == 0) {
        area.launch_one(static_cast<net::NodeId>(next_node++),
                        [&](Server& s) {
                          s.create_pipeline("dwi", "catalyst", config).check();
                        });
        sim.sleep_for(des::seconds(8));  // join + gossip settle
      }

      const auto it = static_cast<std::uint64_t>(iter);
      handle->activate(it).check();
      for (std::uint32_t b = 0; b < params.blocks; ++b) {
        vis::UnstructuredGrid block =
            sim.charge_scoped([&] { return apps::dwi_block(params, iter, b); });
        handle->stage(it, b, vis::DataSet{std::move(block)}).check();
      }
      const des::Time t0 = sim.now();
      handle->execute(it).check();
      const double exec_s = des::to_seconds(sim.now() - t0);
      handle->deactivate(it).check();
      std::printf("iter %2d: %6zu cells, %zu servers, pipeline %.3f s\n",
                  iter, apps::dwi_expected_cells(params, iter),
                  handle->server_count(), exec_s);
    }

    // Scale back down: ask the two newest servers to leave.
    const auto addrs = handle->view();
    for (std::size_t i = addrs.size(); i > addrs.size() - 2; --i) {
      admin.request_leave(addrs[i - 1]).check();
    }
    sim.sleep_for(des::seconds(12));
    handle->refresh_view().check();
    std::printf("after scale-down: %zu servers\n", handle->server_count());
  });
  sim.run();
  std::printf("final frame: /tmp/colza_dwi.ppm\n");
  return 0;
}
